//! Fault injection and run-time recovery for hybrid schedules.
//!
//! The cyberphysical premise of hybrid scheduling — a controller watches
//! the chip and decides at layer boundaries — also makes it the natural
//! place to *survive* hardware faults: when a device fails, the executed
//! prefix is immutable, boundary storage holds the cross-layer reagents,
//! and the unfinished suffix can be re-synthesized on the surviving device
//! library (see [`mfhls_core::recovery`]).
//!
//! This module injects faults into simulated executions:
//!
//! * [`FaultModel`] — seeded probabilities for permanent device failures,
//!   per-attempt operation aborts, accessory degradation (slowdown), and
//!   transport-path blockage, plus deterministic forced failures for
//!   reproducible experiments. Fault draws come from a [`SplitMix64`]
//!   stream *split off* the duration stream, so enabling faults never
//!   perturbs the realized durations.
//! * [`simulate_hybrid_with_faults`] — executes a hybrid schedule,
//!   emitting structured [`FaultEvent`]s; the run stops (degraded) at the
//!   first layer boundary that observes a permanent fault.
//! * [`run_with_recovery`] — the full loop: on a permanent fault the
//!   failed hardware is quarantined and the unfinished suffix is
//!   re-synthesized under a [`RetryPolicy`] (exponential backoff in
//!   schedule time; give-up produces a graceful [`Degradation`] report).
//! * [`simulate_online_with_faults`] — the fault-aware online baseline:
//!   the dispatcher re-binds around dead devices one operation at a time.
//!
//! With [`FaultModel::none`] every entry point reproduces the fault-free
//! behaviour of [`crate::simulate_hybrid`] exactly — same events, same
//! makespan.

use crate::{SimConfig, SimError, SimEvent};
use mfhls_core::recovery::{resynthesize_suffix, Degradation, RetryPolicy};
use mfhls_core::{Assay, HybridSchedule, OpId, SynthConfig};
use mfhls_graph::rng::SplitMix64;
use mfhls_obs as obs;
use std::collections::BTreeSet;

/// Tag used to split the fault stream off the duration stream; any fixed
/// constant works, it only has to differ from the (untagged) main stream.
const FAULT_STREAM_TAG: u64 = 0x0FA1_71DE_C0DE;

/// A deterministic fault injection: `device` fails permanently at the
/// boundary before global layer `layer` (0-based, counted across
/// re-syntheses). Used by `mfhls faultsim --fail-device`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForcedFailure {
    /// Device index (into the original schedule's device list).
    pub device: usize,
    /// Global layer boundary at which the failure is detected.
    pub layer: usize,
}

/// Seeded stochastic fault model, sampled alongside the
/// [`DurationModel`](crate::DurationModel) from an independent sub-stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModel {
    /// Probability that a device fails permanently during one operation
    /// execution (the operation is lost with it).
    pub device_failure: f64,
    /// Probability that one attempt of an operation aborts and must be
    /// retried (with [`RetryPolicy`] backoff). Exhausted retries condemn
    /// the device.
    pub op_abort: f64,
    /// Probability that an operation runs on degraded accessories,
    /// stretching its realized duration by [`FaultModel::degradation_factor`].
    pub accessory_degradation: f64,
    /// Duration multiplier applied on accessory degradation (≥ 1).
    pub degradation_factor: f64,
    /// Probability that one cross-device reagent transfer finds its
    /// transport path blocked; the upstream device is quarantined (the
    /// blockage is indistinguishable from its port clogging).
    pub path_blockage: f64,
    /// Deterministic failures injected at fixed layer boundaries.
    pub forced_failures: Vec<ForcedFailure>,
}

impl FaultModel {
    /// No faults at all: simulation behaves exactly like the fault-free
    /// entry points.
    pub fn none() -> Self {
        FaultModel {
            device_failure: 0.0,
            op_abort: 0.0,
            accessory_degradation: 0.0,
            degradation_factor: 1.0,
            path_blockage: 0.0,
            forced_failures: Vec::new(),
        }
    }

    /// A uniform stochastic model: devices fail at `rate` per execution,
    /// attempts abort at `2·rate`, transfers block at `rate / 2`, and
    /// degradation (factor 2) strikes at `rate`.
    pub fn uniform(rate: f64) -> Self {
        FaultModel {
            device_failure: rate,
            op_abort: (2.0 * rate).min(1.0),
            accessory_degradation: rate,
            degradation_factor: 2.0,
            path_blockage: rate / 2.0,
            forced_failures: Vec::new(),
        }
    }

    /// Whether the model can never produce a fault.
    pub fn is_none(&self) -> bool {
        self.device_failure <= 0.0
            && self.op_abort <= 0.0
            && self.accessory_degradation <= 0.0
            && self.path_blockage <= 0.0
            && self.forced_failures.is_empty()
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

/// A structured fault observation, reported at layer boundaries.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// A device failed permanently (op carries the operation that was lost
    /// with it, if any — forced failures at a boundary lose no operation).
    DeviceFailed {
        /// The failed device.
        device: usize,
        /// Global layer index at whose boundary the failure was handled.
        layer: usize,
        /// The operation that was executing, if any (original id).
        op: Option<OpId>,
    },
    /// One attempt of an operation aborted; it will be retried after
    /// `backoff` schedule-time units.
    OpAborted {
        /// The operation (original id).
        op: OpId,
        /// Device it was attempted on.
        device: usize,
        /// Global layer index.
        layer: usize,
        /// 0-based retry number this abort triggers.
        retry: usize,
        /// Backoff delay before the retry.
        backoff: u64,
    },
    /// An operation ran on degraded accessories and took `factor`× longer.
    AccessoryDegraded {
        /// The operation (original id).
        op: OpId,
        /// The degraded device.
        device: usize,
        /// Global layer index.
        layer: usize,
        /// Slowdown factor.
        factor: f64,
    },
    /// A reagent transfer found its path blocked; the upstream device is
    /// quarantined.
    PathBlocked {
        /// Smaller endpoint of the blocked path.
        a: usize,
        /// Larger endpoint of the blocked path.
        b: usize,
        /// Global layer index.
        layer: usize,
    },
    /// The controller quarantined hardware and re-synthesized the
    /// unfinished suffix.
    Resynthesized {
        /// Global layer index at which recovery ran.
        layer: usize,
        /// All quarantined devices so far.
        quarantined: Vec<usize>,
        /// Operations remaining in the recovered suffix.
        remaining: usize,
        /// Schedule-time cost charged for the re-synthesis (backoff).
        backoff: u64,
    },
}

/// How a fault-injected run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// Every operation completed.
    Completed,
    /// The run gave up; the report lists completed vs abandoned ops.
    Degraded(Degradation),
}

impl RunOutcome {
    /// Whether the run completed every operation.
    pub fn is_complete(&self) -> bool {
        matches!(self, RunOutcome::Completed)
    }

    /// Fraction of operations completed, in `[0, 1]`.
    pub fn completion_fraction(&self) -> f64 {
        match self {
            RunOutcome::Completed => 1.0,
            RunOutcome::Degraded(d) => d.completion_fraction(),
        }
    }
}

/// Result of a fault-injected execution.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRun {
    /// Realized makespan up to completion or give-up.
    pub makespan: u64,
    /// Events of the operations that completed (original ids).
    pub events: Vec<SimEvent>,
    /// Structured fault observations, in occurrence order.
    pub fault_events: Vec<FaultEvent>,
    /// Original ids of completed operations.
    pub completed: Vec<OpId>,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Number of recovery re-syntheses performed.
    pub resyntheses: usize,
    /// Run-time control decisions (barriers + completion checks + fault
    /// handling + re-syntheses).
    pub decisions: usize,
}

/// Executes `schedule` with fault injection but *no* recovery: the first
/// permanent fault degrades the run at the next layer boundary. This is
/// what a fully offline flow experiences — and, with
/// [`FaultModel::none`], it reproduces [`crate::simulate_hybrid`] exactly.
///
/// # Errors
///
/// [`SimError::IncompleteSchedule`] if an operation has no slot.
pub fn simulate_hybrid_with_faults(
    assay: &Assay,
    schedule: &HybridSchedule,
    cfg: &SimConfig,
    faults: &FaultModel,
    policy: &RetryPolicy,
) -> Result<FaultRun, SimError> {
    run_engine(assay, schedule, cfg, faults, policy, None)
}

/// Executes `schedule` with fault injection *and* recovery re-synthesis:
/// permanent faults quarantine the failed hardware and the unfinished
/// suffix is re-layered and re-synthesized on the survivors (seeded with
/// the chip's device library; see [`mfhls_core::recovery`]). Gives up —
/// gracefully, reporting which operations completed — when the policy's
/// retry budget is exhausted or the survivors cannot host the suffix.
///
/// # Errors
///
/// [`SimError::IncompleteSchedule`] if an operation has no slot.
pub fn run_with_recovery(
    assay: &Assay,
    schedule: &HybridSchedule,
    cfg: &SimConfig,
    faults: &FaultModel,
    policy: &RetryPolicy,
    synth: &SynthConfig,
) -> Result<FaultRun, SimError> {
    run_engine(assay, schedule, cfg, faults, policy, Some(synth))
}

/// One in-flight fault: the hardware to quarantine.
struct Interruption {
    quarantine: BTreeSet<usize>,
}

/// Mirrors a [`FaultEvent`] into the observability layer as it is pushed.
///
/// Logical, not diagnostic: the fault stream is seeded, so a single run's
/// event sequence is identical at any thread count. Monte-Carlo fan-outs
/// (`trials`) mute recording around their per-trial closures instead.
fn record_fault(ev: &FaultEvent) {
    if !obs::is_enabled() {
        return;
    }
    match *ev {
        FaultEvent::DeviceFailed { device, layer, op } => obs::event(
            obs::Level::Warn,
            "fault_device_failed",
            &[
                ("device", device.into()),
                ("layer", layer.into()),
                ("op", op.map_or(-1i64, |o| o.index() as i64).into()),
            ],
        ),
        FaultEvent::OpAborted {
            op,
            device,
            layer,
            retry,
            backoff,
        } => obs::event(
            obs::Level::Warn,
            "fault_op_aborted",
            &[
                ("op", op.index().into()),
                ("device", device.into()),
                ("layer", layer.into()),
                ("retry", retry.into()),
                ("backoff", backoff.into()),
            ],
        ),
        FaultEvent::AccessoryDegraded {
            op,
            device,
            layer,
            factor,
        } => obs::event(
            obs::Level::Warn,
            "fault_accessory_degraded",
            &[
                ("op", op.index().into()),
                ("device", device.into()),
                ("layer", layer.into()),
                ("factor", factor.into()),
            ],
        ),
        FaultEvent::PathBlocked { a, b, layer } => obs::event(
            obs::Level::Warn,
            "fault_path_blocked",
            &[("a", a.into()), ("b", b.into()), ("layer", layer.into())],
        ),
        FaultEvent::Resynthesized {
            layer,
            ref quarantined,
            remaining,
            backoff,
        } => obs::event(
            obs::Level::Info,
            "fault_resynthesized",
            &[
                ("layer", layer.into()),
                ("quarantined", quarantined.len().into()),
                ("remaining", remaining.into()),
                ("backoff", backoff.into()),
            ],
        ),
    }
}

/// Records `ev` into the trace, then appends it to `events`.
fn push_fault(events: &mut Vec<FaultEvent>, ev: FaultEvent) {
    record_fault(&ev);
    events.push(ev);
}

fn run_engine(
    assay: &Assay,
    schedule: &HybridSchedule,
    cfg: &SimConfig,
    faults: &FaultModel,
    policy: &RetryPolicy,
    synth: Option<&SynthConfig>,
) -> Result<FaultRun, SimError> {
    for op in assay.op_ids() {
        if schedule.slot(op).is_none() {
            return Err(SimError::IncompleteSchedule(op.index()));
        }
    }
    // Durations use the exact stream of `simulate_hybrid`; faults draw from
    // an independent split, so the two never interfere.
    let actual = crate::sample_durations(assay, cfg);
    let mut frng = SplitMix64::seed_from_u64(cfg.seed).split(FAULT_STREAM_TAG);

    let mut completed: BTreeSet<OpId> = BTreeSet::new();
    let mut quarantined: BTreeSet<usize> = BTreeSet::new();
    let mut events: Vec<SimEvent> = Vec::new();
    let mut fault_events: Vec<FaultEvent> = Vec::new();
    let mut clock = 0u64;
    let mut decisions = 0usize;
    let mut global_layer = 0usize;
    let mut resyntheses = 0usize;

    // The currently executing plan: a schedule over `cur_assay`, whose op
    // `i` is original op `op_map[i]`. Starts as the original plan.
    let mut cur_assay: Assay = assay.clone();
    let mut cur_schedule: HybridSchedule = schedule.clone();
    let mut op_map: Vec<OpId> = assay.op_ids().collect();

    let give_up = |completed: &BTreeSet<OpId>,
                   reason: String,
                   makespan: u64,
                   events: Vec<SimEvent>,
                   fault_events: Vec<FaultEvent>,
                   resyntheses: usize,
                   decisions: usize| {
        obs::event(
            obs::Level::Warn,
            "run_degraded",
            &[
                ("completed", completed.len().into()),
                ("makespan", makespan.into()),
                ("resyntheses", resyntheses.into()),
                ("reason", reason.as_str().into()),
            ],
        );
        FaultRun {
            makespan,
            events,
            completed: completed.iter().copied().collect(),
            outcome: RunOutcome::Degraded(Degradation::new(assay, completed, reason)),
            fault_events,
            resyntheses,
            decisions,
        }
    };

    'plans: loop {
        let mut interruption: Option<Interruption> = None;

        for layer in &cur_schedule.layers {
            // Forced failures fire at the boundary *before* the layer runs.
            let forced: Vec<usize> = faults
                .forced_failures
                .iter()
                .filter(|f| f.layer == global_layer && !quarantined.contains(&f.device))
                .map(|f| f.device)
                .collect();
            if !forced.is_empty() {
                let mut q = BTreeSet::new();
                for d in forced {
                    push_fault(
                        &mut fault_events,
                        FaultEvent::DeviceFailed {
                            device: d,
                            layer: global_layer,
                            op: None,
                        },
                    );
                    q.insert(d);
                }
                interruption = Some(Interruption { quarantine: q });
                break;
            }

            // Execute the layer; faults may fail individual ops, and ops
            // downstream of a failure (same device, or same-layer children)
            // cannot run either.
            let mut layer_end = clock;
            let mut layer_events: Vec<SimEvent> = Vec::new();
            let mut done_in_layer: Vec<OpId> = Vec::new(); // current-plan ids
            let mut failed_ops: BTreeSet<OpId> = BTreeSet::new(); // current-plan ids
            let mut new_quarantine: BTreeSet<usize> = BTreeSet::new();

            'slots: for slot in &layer.ops {
                let orig = op_map[slot.op.index()];
                if new_quarantine.contains(&slot.device)
                    || cur_assay
                        .parents(slot.op)
                        .iter()
                        .any(|p| failed_ops.contains(p))
                {
                    failed_ops.insert(slot.op);
                    continue;
                }
                // Transport-path blockage: one draw per incoming
                // cross-device transfer.
                for p in cur_assay.parents(slot.op) {
                    let Some(ps) = cur_schedule.slot(p) else {
                        continue;
                    };
                    if ps.device != slot.device && frng.gen_bool(faults.path_blockage) {
                        let (a, b) = if ps.device <= slot.device {
                            (ps.device, slot.device)
                        } else {
                            (slot.device, ps.device)
                        };
                        push_fault(
                            &mut fault_events,
                            FaultEvent::PathBlocked {
                                a,
                                b,
                                layer: global_layer,
                            },
                        );
                        push_fault(
                            &mut fault_events,
                            FaultEvent::DeviceFailed {
                                device: ps.device,
                                layer: global_layer,
                                op: Some(orig),
                            },
                        );
                        new_quarantine.insert(ps.device);
                        failed_ops.insert(slot.op);
                        continue 'slots;
                    }
                }
                let start = clock + slot.start;
                let mut dur = actual[orig.index()];
                // Permanent device failure mid-execution.
                if frng.gen_bool(faults.device_failure) {
                    push_fault(
                        &mut fault_events,
                        FaultEvent::DeviceFailed {
                            device: slot.device,
                            layer: global_layer,
                            op: Some(orig),
                        },
                    );
                    new_quarantine.insert(slot.device);
                    failed_ops.insert(slot.op);
                    layer_end = layer_end.max(start + dur);
                    continue;
                }
                // Transient aborts: retry with exponential backoff until
                // the retry budget condemns the device.
                let mut retries = 0usize;
                while frng.gen_bool(faults.op_abort) {
                    if retries >= policy.max_retries {
                        push_fault(
                            &mut fault_events,
                            FaultEvent::DeviceFailed {
                                device: slot.device,
                                layer: global_layer,
                                op: Some(orig),
                            },
                        );
                        new_quarantine.insert(slot.device);
                        failed_ops.insert(slot.op);
                        layer_end = layer_end.max(start + dur);
                        continue 'slots;
                    }
                    let backoff = policy.backoff_for(retries);
                    push_fault(
                        &mut fault_events,
                        FaultEvent::OpAborted {
                            op: orig,
                            device: slot.device,
                            layer: global_layer,
                            retry: retries,
                            backoff,
                        },
                    );
                    dur = dur
                        .saturating_add(backoff)
                        .saturating_add(actual[orig.index()]);
                    retries += 1;
                    decisions += 1;
                }
                // Accessory degradation: slower, but still completes.
                if frng.gen_bool(faults.accessory_degradation) {
                    let factor = faults.degradation_factor.max(1.0);
                    push_fault(
                        &mut fault_events,
                        FaultEvent::AccessoryDegraded {
                            op: orig,
                            device: slot.device,
                            layer: global_layer,
                            factor,
                        },
                    );
                    dur = (dur as f64 * factor).ceil() as u64;
                }
                let end = start + dur;
                layer_end = layer_end.max(end + slot.transport);
                if cur_assay.op(slot.op).is_indeterminate() {
                    decisions += 1;
                }
                layer_events.push(SimEvent {
                    op: orig,
                    device: slot.device,
                    start,
                    end,
                });
                done_in_layer.push(slot.op);
            }

            completed.extend(done_in_layer.iter().map(|&o| op_map[o.index()]));
            events.extend(layer_events);
            clock = layer_end;
            decisions += 1; // barrier decision
            global_layer += 1;
            if !failed_ops.is_empty() {
                decisions += 1; // fault-handling decision
                interruption = Some(Interruption {
                    quarantine: new_quarantine,
                });
                break;
            }
        }

        let Some(interruption) = interruption else {
            // Every layer of the current plan executed cleanly.
            events.sort_by_key(|e| (e.start, e.op));
            obs::event(
                obs::Level::Info,
                "run_completed",
                &[
                    ("makespan", clock.into()),
                    ("resyntheses", resyntheses.into()),
                    ("decisions", decisions.into()),
                ],
            );
            return Ok(FaultRun {
                makespan: clock,
                events,
                completed: completed.iter().copied().collect(),
                outcome: RunOutcome::Completed,
                fault_events,
                resyntheses,
                decisions,
            });
        };

        quarantined.extend(interruption.quarantine);

        let Some(synth) = synth else {
            events.sort_by_key(|e| (e.start, e.op));
            return Ok(give_up(
                &completed,
                "permanent fault without a recovery policy".to_owned(),
                clock,
                events,
                fault_events,
                resyntheses,
                decisions,
            ));
        };
        if resyntheses >= policy.max_retries.max(1) {
            events.sort_by_key(|e| (e.start, e.op));
            return Ok(give_up(
                &completed,
                format!("retry budget exhausted after {resyntheses} re-syntheses"),
                clock,
                events,
                fault_events,
                resyntheses,
                decisions,
            ));
        }
        match resynthesize_suffix(assay, schedule, &completed, &quarantined, synth) {
            Ok(plan) => {
                let backoff = policy.backoff_for(resyntheses);
                resyntheses += 1;
                decisions += 1;
                clock = clock.saturating_add(backoff);
                push_fault(
                    &mut fault_events,
                    FaultEvent::Resynthesized {
                        layer: global_layer,
                        quarantined: quarantined.iter().copied().collect(),
                        remaining: plan.assay.len(),
                        backoff,
                    },
                );
                cur_assay = plan.assay;
                cur_schedule = plan.schedule;
                op_map = plan.op_map;
                continue 'plans;
            }
            Err(e) => {
                events.sort_by_key(|e| (e.start, e.op));
                return Ok(give_up(
                    &completed,
                    e.to_string(),
                    clock,
                    events,
                    fault_events,
                    resyntheses,
                    decisions,
                ));
            }
        }
    }
}

/// Fault-aware fully-online baseline: dispatches operations the moment
/// their parents and a compatible device are free (binding seeded from
/// `schedule`), paying `decision_latency` per dispatch. On a device
/// failure the dispatcher quarantines it and greedily re-binds to any
/// compatible surviving device; operations with no surviving host (or
/// whose ancestors were abandoned) are abandoned.
///
/// # Errors
///
/// [`SimError::IncompleteSchedule`] if an operation has no binding.
pub fn simulate_online_with_faults(
    assay: &Assay,
    schedule: &HybridSchedule,
    cfg: &SimConfig,
    faults: &FaultModel,
    policy: &RetryPolicy,
    decision_latency: u64,
) -> Result<FaultRun, SimError> {
    for op in assay.op_ids() {
        if schedule.slot(op).is_none() {
            return Err(SimError::IncompleteSchedule(op.index()));
        }
    }
    let actual = crate::sample_durations(assay, cfg);
    let mut frng = SplitMix64::seed_from_u64(cfg.seed).split(FAULT_STREAM_TAG);

    let preferred: Vec<usize> = assay
        .op_ids()
        .filter_map(|o| schedule.slot(o).map(|s| s.device))
        .collect();
    let n_devices = schedule.devices.len();
    let mut device_free = vec![0u64; n_devices];
    let mut quarantined: BTreeSet<usize> = BTreeSet::new();
    let mut finish: Vec<Option<u64>> = vec![None; assay.len()];
    let mut abandoned: BTreeSet<OpId> = BTreeSet::new();
    let mut events: Vec<SimEvent> = Vec::new();
    let mut fault_events: Vec<FaultEvent> = Vec::new();
    let mut decisions = 0usize;

    let mut remaining: Vec<OpId> = assay.op_ids().collect();
    while !remaining.is_empty() {
        // Abandon ops whose parents are abandoned.
        remaining.retain(|&op| {
            if assay.parents(op).iter().any(|p| abandoned.contains(p)) {
                abandoned.insert(op);
                false
            } else {
                true
            }
        });
        // Pick the ready op that can start earliest.
        let mut best: Option<(u64, usize, usize)> = None; // (start, device, idx)
        for (k, &op) in remaining.iter().enumerate() {
            let parents_done: Option<u64> = assay
                .parents(op)
                .iter()
                .map(|p| finish[p.index()])
                .try_fold(0u64, |acc, f| f.map(|v| acc.max(v)));
            let Some(ready) = parents_done else { continue };
            // Preferred device first, then any compatible survivor.
            let req = assay.op(op).requirements();
            let host = std::iter::once(preferred[op.index()])
                .chain(0..n_devices)
                .filter(|d| !quarantined.contains(d))
                .filter(|&d| schedule.devices[d].satisfies(req))
                .min_by_key(|&d| device_free[d].max(ready));
            let Some(dev) = host else { continue };
            let start = ready.max(device_free[dev]) + decision_latency;
            if best.is_none_or(|(s, _, _)| start < s) {
                best = Some((start, dev, k));
            }
        }
        let Some((start, dev, k)) = best else {
            // Nothing ready can be hosted: abandon all remaining.
            abandoned.extend(remaining.iter().copied());
            break;
        };
        let op = remaining.swap_remove(k);
        decisions += 1;
        let mut dur = actual[op.index()];
        // Fault draws, same scheme as the hybrid engine.
        if frng.gen_bool(faults.device_failure) {
            push_fault(
                &mut fault_events,
                FaultEvent::DeviceFailed {
                    device: dev,
                    layer: 0,
                    op: Some(op),
                },
            );
            quarantined.insert(dev);
            remaining.push(op); // retry elsewhere next round
            continue;
        }
        let mut retries = 0usize;
        let mut condemned = false;
        while frng.gen_bool(faults.op_abort) {
            if retries >= policy.max_retries {
                push_fault(
                    &mut fault_events,
                    FaultEvent::DeviceFailed {
                        device: dev,
                        layer: 0,
                        op: Some(op),
                    },
                );
                quarantined.insert(dev);
                remaining.push(op);
                condemned = true;
                break;
            }
            let backoff = policy.backoff_for(retries);
            push_fault(
                &mut fault_events,
                FaultEvent::OpAborted {
                    op,
                    device: dev,
                    layer: 0,
                    retry: retries,
                    backoff,
                },
            );
            dur = dur
                .saturating_add(backoff)
                .saturating_add(actual[op.index()]);
            retries += 1;
        }
        if condemned {
            continue;
        }
        if frng.gen_bool(faults.accessory_degradation) {
            let factor = faults.degradation_factor.max(1.0);
            push_fault(
                &mut fault_events,
                FaultEvent::AccessoryDegraded {
                    op,
                    device: dev,
                    layer: 0,
                    factor,
                },
            );
            dur = (dur as f64 * factor).ceil() as u64;
        }
        let end = start + dur;
        device_free[dev] = end;
        finish[op.index()] = Some(end);
        events.push(SimEvent {
            op,
            device: dev,
            start,
            end,
        });
    }

    let makespan = events.iter().map(|e| e.end).max().unwrap_or(0);
    events.sort_by_key(|e| (e.start, e.op));
    let completed: BTreeSet<OpId> = assay
        .op_ids()
        .filter(|o| finish[o.index()].is_some())
        .collect();
    let outcome = if completed.len() == assay.len() {
        RunOutcome::Completed
    } else {
        RunOutcome::Degraded(Degradation::new(
            assay,
            &completed,
            "online dispatcher ran out of surviving hosts".to_owned(),
        ))
    };
    Ok(FaultRun {
        makespan,
        events,
        completed: completed.iter().copied().collect(),
        outcome,
        fault_events,
        resyntheses: 0,
        decisions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_hybrid, DurationModel};
    use mfhls_core::{Duration, Operation, SynthConfig, Synthesizer};

    fn demo_assay() -> Assay {
        let mut a = Assay::new("demo");
        let prep = a.add_op(
            Operation::new("prep")
                .capacity(mfhls_chip::Capacity::Small)
                .with_duration(Duration::fixed(5)),
        );
        let cap = a.add_op(Operation::new("capture").with_duration(Duration::at_least(3)));
        let det = a.add_op(Operation::new("detect").with_duration(Duration::fixed(4)));
        let _side = a.add_op(
            Operation::new("side")
                .capacity(mfhls_chip::Capacity::Small)
                .with_duration(Duration::fixed(6)),
        );
        a.add_dependency(prep, cap).unwrap();
        a.add_dependency(cap, det).unwrap();
        a
    }

    fn synth(a: &Assay) -> HybridSchedule {
        Synthesizer::new(SynthConfig::default())
            .run(a)
            .unwrap()
            .schedule
    }

    #[test]
    fn no_faults_reproduces_hybrid_exactly() {
        let a = demo_assay();
        let s = synth(&a);
        for seed in 0..20 {
            let cfg = SimConfig {
                seed,
                ..SimConfig::default()
            };
            let base = simulate_hybrid(&a, &s, &cfg).unwrap();
            let faulty = simulate_hybrid_with_faults(
                &a,
                &s,
                &cfg,
                &FaultModel::none(),
                &RetryPolicy::default(),
            )
            .unwrap();
            assert_eq!(faulty.makespan, base.makespan, "seed {seed}");
            assert_eq!(faulty.events, base.events, "seed {seed}");
            assert_eq!(faulty.decisions, base.decisions, "seed {seed}");
            assert!(faulty.fault_events.is_empty());
            assert!(faulty.outcome.is_complete());

            let recovered = run_with_recovery(
                &a,
                &s,
                &cfg,
                &FaultModel::none(),
                &RetryPolicy::default(),
                &SynthConfig::default(),
            )
            .unwrap();
            assert_eq!(recovered.makespan, base.makespan, "seed {seed}");
            assert_eq!(recovered.resyntheses, 0);
        }
    }

    #[test]
    fn forced_failure_triggers_recovery_and_avoids_dead_device() {
        let a = demo_assay();
        let s = synth(&a);
        let dead = s.slot(OpId(0)).unwrap().device;
        let faults = FaultModel {
            forced_failures: vec![ForcedFailure {
                device: dead,
                layer: 0,
            }],
            ..FaultModel::none()
        };
        let run = run_with_recovery(
            &a,
            &s,
            &SimConfig {
                model: DurationModel::Exact,
                seed: 1,
            },
            &faults,
            &RetryPolicy::default(),
            &SynthConfig::default(),
        )
        .unwrap();
        assert!(run.outcome.is_complete(), "{:?}", run.outcome);
        assert_eq!(run.resyntheses, 1);
        assert!(run
            .fault_events
            .iter()
            .any(|e| matches!(e, FaultEvent::DeviceFailed { device, .. } if *device == dead)));
        // No completed event ran on the dead device.
        assert!(run.events.iter().all(|e| e.device != dead));
        assert_eq!(run.completed.len(), a.len());
    }

    #[test]
    fn recovery_without_policy_degrades() {
        let a = demo_assay();
        let s = synth(&a);
        let dead = s.slot(OpId(0)).unwrap().device;
        let faults = FaultModel {
            forced_failures: vec![ForcedFailure {
                device: dead,
                layer: 0,
            }],
            ..FaultModel::none()
        };
        let run = simulate_hybrid_with_faults(
            &a,
            &s,
            &SimConfig::default(),
            &faults,
            &RetryPolicy::default(),
        )
        .unwrap();
        assert!(!run.outcome.is_complete());
        assert!(run.outcome.completion_fraction() < 1.0);
    }

    #[test]
    fn aborts_extend_but_complete() {
        let a = demo_assay();
        let s = synth(&a);
        let cfg = SimConfig {
            model: DurationModel::Exact,
            seed: 7,
        };
        let base = simulate_hybrid(&a, &s, &cfg).unwrap();
        // High abort rate, generous retry budget: runs complete but slower.
        let faults = FaultModel {
            op_abort: 0.4,
            ..FaultModel::none()
        };
        let policy = RetryPolicy {
            max_retries: 50,
            ..RetryPolicy::default()
        };
        let mut extended = false;
        for seed in 0..20 {
            let run = run_with_recovery(
                &a,
                &s,
                &SimConfig { seed, ..cfg },
                &faults,
                &policy,
                &SynthConfig::default(),
            )
            .unwrap();
            assert!(run.outcome.is_complete(), "seed {seed}: {:?}", run.outcome);
            assert!(run.makespan >= base.makespan);
            if run.makespan > base.makespan {
                extended = true;
            }
        }
        assert!(extended, "40% abort rate never fired in 20 seeds");
    }

    #[test]
    fn degradation_slows_without_failing() {
        let a = demo_assay();
        let s = synth(&a);
        let faults = FaultModel {
            accessory_degradation: 1.0, // always degraded
            degradation_factor: 3.0,
            ..FaultModel::none()
        };
        let cfg = SimConfig {
            model: DurationModel::Exact,
            seed: 0,
        };
        let base = simulate_hybrid(&a, &s, &cfg).unwrap();
        let run =
            simulate_hybrid_with_faults(&a, &s, &cfg, &faults, &RetryPolicy::default()).unwrap();
        assert!(run.outcome.is_complete());
        assert!(
            run.makespan >= base.makespan * 2,
            "3x degradation on every op"
        );
        assert!(run
            .fault_events
            .iter()
            .all(|e| matches!(e, FaultEvent::AccessoryDegraded { .. })));
    }

    #[test]
    fn online_rebinds_around_dead_devices() {
        let a = demo_assay();
        let s = synth(&a);
        let run = simulate_online_with_faults(
            &a,
            &s,
            &SimConfig {
                model: DurationModel::Exact,
                seed: 0,
            },
            &FaultModel::none(),
            &RetryPolicy::default(),
            1,
        )
        .unwrap();
        assert!(run.outcome.is_complete());
        assert_eq!(run.events.len(), a.len());
    }

    #[test]
    fn losing_everything_degrades_gracefully() {
        let a = demo_assay();
        let s = synth(&a);
        // Fail every device at the first boundary.
        let faults = FaultModel {
            forced_failures: (0..s.devices.len())
                .map(|d| ForcedFailure {
                    device: d,
                    layer: 0,
                })
                .collect(),
            ..FaultModel::none()
        };
        let run = run_with_recovery(
            &a,
            &s,
            &SimConfig::default(),
            &faults,
            &RetryPolicy::default(),
            &SynthConfig::default(),
        )
        .unwrap();
        let RunOutcome::Degraded(report) = &run.outcome else {
            panic!("losing every device must degrade");
        };
        assert_eq!(report.completed.len(), 0);
        assert_eq!(report.abandoned.len(), a.len());
    }
}
