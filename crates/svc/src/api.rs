//! The versioned `mfhls-api/v1` request/response schema.
//!
//! Every wire object — request, control, response — is one JSON object
//! per line (NDJSON) carrying an explicit `"version"` field, so clients
//! and servers can detect mismatches instead of misparsing each other.
//!
//! # Requests
//!
//! ```json
//! {"version":"mfhls-api/v1","type":"synthesize","id":"r1",
//!  "assay":{"dsl":"assay \"x\"\nop a { duration: 1m }"},
//!  "config":{"max_devices":12,"solver":"hybrid"},
//!  "artifacts":["stats","schedule"],"deadline_ms":60000}
//! ```
//!
//! The assay is inline DSL (`{"dsl":"..."}`), a named generator
//! (`{"benchmark":"kinase","scale":2}` — see [`benchmark_assay`]), or an
//! inline `mfhls-netlist/v1` object (`{"netlist":{...}}` — see
//! [`crate::netlist`]).
//! `config` entries override [`SynthConfig::default`] through the
//! validating builder; unknown keys are rejected (the service equivalent
//! of the CLI's unknown-flag errors). `artifacts` selects response
//! payloads: `stats` (default), `schedule`, `gantt`, `trace`
//! (deterministic logical fingerprint of the synthesis trace), and
//! `diagnostics` (runtime and cache split — **not** covered by the
//! byte-identity guarantee, which is why it is opt-in).
//!
//! Control lines share the envelope: `{"type":"flush"}` forces the
//! pending batch to execute, `{"type":"cancel","id":"r1"}` cancels a
//! pending request, `{"type":"shutdown"}` flushes and stops the service.
//! (A `version` field is optional on controls but checked if present.)
//!
//! # Responses
//!
//! ```json
//! {"version":"mfhls-api/v1","type":"response","id":"r1","status":"ok",
//!  "stats":{"ops":16,"layers":1,"exec_time":{"fixed":107,"indeterminate_layers":[]},...}}
//! {"version":"mfhls-api/v1","type":"response","id":"r9","status":"error",
//!  "error":{"kind":"overloaded","message":"queue full (capacity 128)"}}
//! ```
//!
//! Everything outside `diagnostics` is deterministic: identical requests
//! produce byte-identical response lines at any worker count.

use crate::json::{obj, Json};
use mfhls_core::{
    Assay, CoreError, IterationStats, SolverKind, SynthConfig, SynthesisResult, Weights,
};
use mfhls_sim::trials::{SurvivalStats, TrialStats};

/// The wire-protocol version tag carried by every request and response.
pub const VERSION: &str = "mfhls-api/v1";

/// Typed rejection categories of the `mfhls-api/v1` protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorKind {
    /// The line is not valid JSON or misses required envelope fields.
    MalformedRequest,
    /// The `version` field does not match [`VERSION`].
    UnsupportedVersion,
    /// The admission queue is full; retry after the current batch.
    Overloaded,
    /// The request's deadline had already passed when a worker picked it
    /// up.
    DeadlineExceeded,
    /// The request was cancelled before it ran.
    Cancelled,
    /// The inline DSL failed to parse (or exceeded the op limit).
    ParseError,
    /// The configuration overrides failed validation.
    ConfigError,
    /// Synthesis itself failed ([`CoreError`] text in the message).
    SynthesisError,
}

impl ErrorKind {
    /// The wire encoding of the kind (snake_case).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::MalformedRequest => "malformed_request",
            ErrorKind::UnsupportedVersion => "unsupported_version",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::ParseError => "parse_error",
            ErrorKind::ConfigError => "config_error",
            ErrorKind::SynthesisError => "synthesis_error",
        }
    }
}

/// A typed request rejection: the kind selects the wire `error.kind`,
/// the message is surfaced verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// Rejection category.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl RequestError {
    fn new(kind: ErrorKind, message: impl Into<String>) -> RequestError {
        RequestError {
            kind,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

impl std::error::Error for RequestError {}

/// Where the request's assay comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum AssaySource {
    /// Inline DSL text (see `mfhls-dsl`).
    Dsl(String),
    /// A named generator from `mfhls-assays`.
    Benchmark {
        /// Generator name (see [`benchmark_assay`]).
        name: String,
        /// Optional scale parameter (samples / cells); generator default
        /// when absent.
        scale: Option<usize>,
    },
    /// An inline `mfhls-netlist/v1` object (see [`crate::netlist`]);
    /// validated field-by-field at resolution time.
    Netlist(Json),
}

/// Which payloads the response should carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Artifacts {
    /// Deterministic synthesis statistics (`stats`; on by default).
    pub stats: bool,
    /// The full schedule (`schedule`).
    pub schedule: bool,
    /// ASCII Gantt chart (`gantt`).
    pub gantt: bool,
    /// Logical fingerprint of the synthesis trace (`trace`).
    pub trace: bool,
    /// Runtime + cache split (`diagnostics`; excluded from the
    /// byte-identity guarantee).
    pub diagnostics: bool,
}

impl Default for Artifacts {
    fn default() -> Self {
        Artifacts {
            stats: true,
            schedule: false,
            gantt: false,
            trace: false,
            diagnostics: false,
        }
    }
}

/// A parsed, not-yet-validated synthesis request.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisRequest {
    /// Client-chosen identifier, echoed on the response.
    pub id: String,
    /// Assay source.
    pub assay: AssaySource,
    /// Configuration overrides (raw JSON; resolved by
    /// [`SynthesisRequest::resolve_config`]).
    pub config: Option<Json>,
    /// Requested response payloads.
    pub artifacts: Artifacts,
    /// Optional deadline in milliseconds from admission. `0` means
    /// "already expired" — useful for deterministic cancellation tests.
    pub deadline_ms: Option<u64>,
}

/// One parsed wire line.
#[derive(Debug, Clone, PartialEq)]
pub enum Incoming {
    /// A synthesis request.
    Synthesize(Box<SynthesisRequest>),
    /// Execute the pending batch now.
    Flush,
    /// Cancel the pending request with this id.
    Cancel(String),
    /// Flush, then stop serving.
    Shutdown,
}

/// Parses one NDJSON line into a request or control.
///
/// # Errors
///
/// [`RequestError`] with kind [`ErrorKind::MalformedRequest`] for JSON or
/// envelope problems, [`ErrorKind::UnsupportedVersion`] for a version
/// mismatch.
pub fn parse_incoming(line: &str) -> Result<Incoming, RequestError> {
    let value = Json::parse(line).map_err(|e| {
        RequestError::new(ErrorKind::MalformedRequest, format!("invalid JSON: {e}"))
    })?;
    if value.as_object().is_none() {
        return Err(RequestError::new(
            ErrorKind::MalformedRequest,
            "expected a JSON object",
        ));
    }
    let kind = value
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| RequestError::new(ErrorKind::MalformedRequest, "missing 'type' field"))?;
    // Controls may omit the version; requests must carry it.
    if let Some(v) = value.get("version") {
        match v.as_str() {
            Some(VERSION) => {}
            Some(other) => {
                return Err(RequestError::new(
                    ErrorKind::UnsupportedVersion,
                    format!("version '{other}' is not supported (want '{VERSION}')"),
                ))
            }
            None => {
                return Err(RequestError::new(
                    ErrorKind::MalformedRequest,
                    "'version' must be a string",
                ))
            }
        }
    }
    match kind {
        "flush" => return Ok(Incoming::Flush),
        "shutdown" => return Ok(Incoming::Shutdown),
        "cancel" => {
            let id = value.get("id").and_then(Json::as_str).ok_or_else(|| {
                RequestError::new(ErrorKind::MalformedRequest, "cancel needs a string 'id'")
            })?;
            return Ok(Incoming::Cancel(id.to_owned()));
        }
        "synthesize" => {}
        other => {
            return Err(RequestError::new(
                ErrorKind::MalformedRequest,
                format!("unknown type '{other}' (synthesize|flush|cancel|shutdown)"),
            ))
        }
    }
    if value.get("version").is_none() {
        return Err(RequestError::new(
            ErrorKind::MalformedRequest,
            format!("synthesize requests must carry \"version\":\"{VERSION}\""),
        ));
    }
    let id = value
        .get("id")
        .and_then(Json::as_str)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| {
            RequestError::new(
                ErrorKind::MalformedRequest,
                "synthesize needs a non-empty string 'id'",
            )
        })?
        .to_owned();
    let assay_field = value
        .get("assay")
        .ok_or_else(|| RequestError::new(ErrorKind::MalformedRequest, "missing 'assay' field"))?;
    let assay = if let Some(dsl) = assay_field.get("dsl").and_then(Json::as_str) {
        AssaySource::Dsl(dsl.to_owned())
    } else if let Some(name) = assay_field.get("benchmark").and_then(Json::as_str) {
        let scale = match assay_field.get("scale") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                RequestError::new(
                    ErrorKind::MalformedRequest,
                    "'scale' must be a non-negative integer",
                )
            })? as usize),
        };
        AssaySource::Benchmark {
            name: name.to_owned(),
            scale,
        }
    } else if let Some(net) = assay_field.get("netlist") {
        if net.as_object().is_none() {
            return Err(RequestError::new(
                ErrorKind::MalformedRequest,
                "'assay.netlist' must be an object (mfhls-netlist/v1)",
            ));
        }
        AssaySource::Netlist(net.clone())
    } else {
        return Err(RequestError::new(
            ErrorKind::MalformedRequest,
            "'assay' needs {\"dsl\":\"...\"}, {\"benchmark\":\"name\"}, or {\"netlist\":{...}}",
        ));
    };
    let artifacts = match value.get("artifacts") {
        None => Artifacts::default(),
        Some(list) => {
            let items = list.as_array().ok_or_else(|| {
                RequestError::new(ErrorKind::MalformedRequest, "'artifacts' must be an array")
            })?;
            let mut a = Artifacts {
                stats: false,
                ..Artifacts::default()
            };
            for item in items {
                match item.as_str() {
                    Some("stats") => a.stats = true,
                    Some("schedule") => a.schedule = true,
                    Some("gantt") => a.gantt = true,
                    Some("trace") => a.trace = true,
                    Some("diagnostics") => a.diagnostics = true,
                    other => {
                        return Err(RequestError::new(
                            ErrorKind::MalformedRequest,
                            format!(
                                "unknown artifact {other:?} \
                                 (stats|schedule|gantt|trace|diagnostics)"
                            ),
                        ))
                    }
                }
            }
            a
        }
    };
    let deadline_ms = match value.get("deadline_ms") {
        None => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| {
            RequestError::new(
                ErrorKind::MalformedRequest,
                "'deadline_ms' must be a non-negative integer",
            )
        })?),
    };
    Ok(Incoming::Synthesize(Box::new(SynthesisRequest {
        id,
        assay,
        config: value.get("config").cloned(),
        artifacts,
        deadline_ms,
    })))
}

/// Maps a solver spec in flag syntax to the [`SolverKind`] the CLI and
/// the service both use — a bare backend name (`heuristic`, `sdc`, `ilp`,
/// `hybrid`, `portfolio`), a parameterized form
/// (`hybrid:max_nodes=20000`), or a portfolio leg list
/// (`portfolio:heuristic+sdc+ilp`). The backend registry lives in
/// [`crate::spec`]; this is a thin alias for [`crate::spec::parse_spec`].
///
/// # Errors
///
/// A targeted message naming the unknown solver (with the registered
/// names) or the offending field/value.
pub fn solver_from_str(name: &str) -> Result<SolverKind, String> {
    crate::spec::parse_spec(name)
}

/// Instantiates a named benchmark assay: `kinase` (scale = samples,
/// default 2), `gene` (cells, default 10), `rtqpcr` (cells, default 20),
/// `cell-culture` (chambers, default 4).
///
/// # Errors
///
/// A message naming the unknown benchmark.
pub fn benchmark_assay(name: &str, scale: Option<usize>) -> Result<Assay, String> {
    match name {
        "kinase" | "kinase_activity" => Ok(mfhls_assays::kinase_activity(scale.unwrap_or(2))),
        "gene" | "gene_expression" => Ok(mfhls_assays::gene_expression(scale.unwrap_or(10))),
        "rtqpcr" => Ok(mfhls_assays::rtqpcr(scale.unwrap_or(20))),
        "cell-culture" | "cell_culture" => Ok(mfhls_assays::cell_culture(scale.unwrap_or(4), 2)),
        other => Err(format!(
            "unknown benchmark '{other}' (kinase|gene|rtqpcr|cell-culture)"
        )),
    }
}

impl SynthesisRequest {
    /// Re-serializes the request into its canonical byte form: the same
    /// fields a client sent, written through the deterministic [`Json`]
    /// writer in a fixed field order, independent of the wire line's
    /// whitespace, key order, or escaping choices. This is the input to
    /// shard routing ([`crate::shard::shard_of`]) — two requests with
    /// identical content always land on the same shard, on any process.
    pub fn canonical_request_bytes(&self) -> Vec<u8> {
        let assay = match &self.assay {
            AssaySource::Dsl(text) => obj(vec![("dsl", Json::Str(text.clone()))]),
            AssaySource::Benchmark { name, scale } => {
                let mut entries = vec![("benchmark", Json::Str(name.clone()))];
                if let Some(scale) = scale {
                    entries.push(("scale", Json::Int(*scale as i64)));
                }
                obj(entries)
            }
            AssaySource::Netlist(value) => obj(vec![("netlist", value.clone())]),
        };
        let mut artifacts = Vec::new();
        for (on, name) in [
            (self.artifacts.stats, "stats"),
            (self.artifacts.schedule, "schedule"),
            (self.artifacts.gantt, "gantt"),
            (self.artifacts.trace, "trace"),
            (self.artifacts.diagnostics, "diagnostics"),
        ] {
            if on {
                artifacts.push(Json::Str(name.to_owned()));
            }
        }
        let mut entries = vec![("id", Json::Str(self.id.clone())), ("assay", assay)];
        if let Some(config) = &self.config {
            entries.push(("config", config.clone()));
        }
        entries.push(("artifacts", Json::Array(artifacts)));
        if let Some(ms) = self.deadline_ms {
            entries.push(("deadline_ms", Json::Int(ms as i64)));
        }
        let mut out = String::new();
        obj(entries).write(&mut out);
        out.into_bytes()
    }

    /// Materializes the assay (parsing inline DSL or an
    /// `mfhls-netlist/v1` object with `max_ops` as the admission bound,
    /// or instantiating a named benchmark).
    ///
    /// # Errors
    ///
    /// [`ErrorKind::ParseError`] with the DSL error, the netlist error
    /// naming the offending field, or the op-limit / unknown-benchmark
    /// message.
    pub fn resolve_assay(&self, max_ops: usize) -> Result<Assay, RequestError> {
        match &self.assay {
            AssaySource::Dsl(text) => mfhls_dsl::parse_with_limit(text, max_ops)
                .map_err(|e| RequestError::new(ErrorKind::ParseError, e.to_string())),
            AssaySource::Netlist(value) => crate::netlist::assay_from_json(value, max_ops)
                .map_err(|m| RequestError::new(ErrorKind::ParseError, m)),
            AssaySource::Benchmark { name, scale } => {
                let assay = benchmark_assay(name, *scale)
                    .map_err(|m| RequestError::new(ErrorKind::ParseError, m))?;
                if assay.len() > max_ops {
                    return Err(RequestError::new(
                        ErrorKind::ParseError,
                        format!(
                            "benchmark '{name}' defines {} operations, exceeding the limit of {max_ops}",
                            assay.len()
                        ),
                    ));
                }
                Ok(assay)
            }
        }
    }

    /// Applies the request's `config` overrides onto
    /// [`SynthConfig::default`] through the validating builder.
    ///
    /// Recognized keys: `max_devices`, `threshold`, `weights` (array of
    /// four), `solver` (flag-syntax string or structured object, see
    /// [`crate::spec`]), `conventional` (bool),
    /// `component_oriented` (bool), `min_improvement`, `max_iterations`,
    /// `layer_cache` (bool). Unknown keys are rejected.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::ConfigError`] naming the offending key or the
    /// validation failure.
    pub fn resolve_config(&self) -> Result<SynthConfig, RequestError> {
        let bad = |m: String| RequestError::new(ErrorKind::ConfigError, m);
        let Some(overrides) = &self.config else {
            return Ok(SynthConfig::default());
        };
        let entries = overrides
            .as_object()
            .ok_or_else(|| bad("'config' must be an object".to_owned()))?;
        let mut builder = SynthConfig::builder();
        let mut conventional = false;
        for (key, value) in entries {
            match key.as_str() {
                "max_devices" => {
                    let n = value
                        .as_u64()
                        .ok_or_else(|| bad("'max_devices' must be a non-negative integer".to_owned()))?;
                    builder = builder.max_devices(n as usize);
                }
                "threshold" => {
                    let n = value
                        .as_u64()
                        .ok_or_else(|| bad("'threshold' must be a non-negative integer".to_owned()))?;
                    builder = builder.indeterminate_threshold(n as usize);
                }
                "weights" => {
                    let items = value
                        .as_array()
                        .ok_or_else(|| bad("'weights' must be an array".to_owned()))?;
                    let nums: Vec<u64> = items
                        .iter()
                        .map(|v| v.as_u64())
                        .collect::<Option<_>>()
                        .ok_or_else(|| bad("'weights' entries must be integers".to_owned()))?;
                    let [time, area, processing, paths] = nums[..] else {
                        return Err(bad(
                            "'weights' wants exactly four numbers: Ct,Ca,Cpr,Cp".to_owned()
                        ));
                    };
                    builder = builder.weights(Weights {
                        time,
                        area,
                        processing,
                        paths,
                    });
                }
                "solver" => {
                    // Bare string (flag syntax, pre-0.11 compatible) or a
                    // structured object — one parser for both.
                    builder = builder.solver(crate::spec::spec_from_json(value).map_err(bad)?);
                }
                "conventional" => {
                    conventional = value
                        .as_bool()
                        .ok_or_else(|| bad("'conventional' must be a boolean".to_owned()))?;
                }
                "component_oriented" => {
                    let on = value
                        .as_bool()
                        .ok_or_else(|| bad("'component_oriented' must be a boolean".to_owned()))?;
                    builder = builder.component_oriented(on);
                }
                "min_improvement" => {
                    let f = value
                        .as_f64()
                        .ok_or_else(|| bad("'min_improvement' must be a number".to_owned()))?;
                    builder = builder.min_improvement(f);
                }
                "max_iterations" => {
                    let n = value
                        .as_u64()
                        .ok_or_else(|| bad("'max_iterations' must be a non-negative integer".to_owned()))?;
                    builder = builder.max_iterations(n as usize);
                }
                "layer_cache" => {
                    let on = value
                        .as_bool()
                        .ok_or_else(|| bad("'layer_cache' must be a boolean".to_owned()))?;
                    builder = builder.layer_cache(on);
                }
                other => {
                    return Err(bad(format!(
                        "unknown config key '{other}' (max_devices|threshold|weights|solver|\
                         conventional|component_oriented|min_improvement|max_iterations|layer_cache)"
                    )))
                }
            }
        }
        let mut config = builder.build().map_err(|e| match e {
            CoreError::Config(m) => bad(m),
            other => bad(other.to_string()),
        })?;
        if conventional {
            config = mfhls_core::conventional::conventional_config(config);
        }
        Ok(config)
    }
}

/// The deterministic `stats` payload of an ok response.
///
/// Runtime and the cache hit/miss split are deliberately excluded — they
/// vary across machines and thread counts. They live in the opt-in
/// `diagnostics` artifact instead.
pub fn stats_json(assay: &Assay, result: &SynthesisResult) -> Json {
    let exec = result.schedule.exec_time(assay);
    let iterations: Vec<Json> = result.iterations.iter().map(iteration_json).collect();
    let mut solver = mfhls_core::SolverStats::default();
    for it in &result.iterations {
        solver.merge(&it.solver);
    }
    obj(vec![
        ("ops", Json::Int(assay.len() as i64)),
        (
            "indeterminate_ops",
            Json::Int(assay.indeterminate_ops().len() as i64),
        ),
        ("layers", Json::Int(result.layering.num_layers() as i64)),
        (
            "exec_time",
            obj(vec![
                ("fixed", Json::Int(exec.fixed as i64)),
                (
                    "indeterminate_layers",
                    Json::Array(
                        exec.indeterminate_layers
                            .iter()
                            .map(|&k| Json::Int(k as i64))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "devices",
            Json::Int(result.schedule.used_device_count() as i64),
        ),
        ("paths", Json::Int(result.schedule.path_count() as i64)),
        (
            "objective",
            Json::Int(result.final_stats().objective as i64),
        ),
        ("iterations", Json::Array(iterations)),
        ("solver", solver_stats_json(&solver)),
    ])
}

fn iteration_json(it: &IterationStats) -> Json {
    obj(vec![
        ("exec_fixed", Json::Int(it.exec_time.fixed as i64)),
        ("devices", Json::Int(it.device_count as i64)),
        ("paths", Json::Int(it.path_count as i64)),
        ("objective", Json::Int(it.objective as i64)),
    ])
}

/// Serializes the deterministic solver work counters.
pub fn solver_stats_json(s: &mfhls_core::SolverStats) -> Json {
    obj(vec![
        ("ilp_solves", Json::Int(s.ilp_solves as i64)),
        ("proven_optimal", Json::Int(s.proven_optimal as i64)),
        ("nodes", Json::Int(s.nodes as i64)),
        ("pivots", Json::Int(s.pivots as i64)),
        ("warm_solves", Json::Int(s.warm_solves as i64)),
        ("cold_solves", Json::Int(s.cold_solves as i64)),
        ("heuristic_rounds", Json::Int(s.heuristic_rounds as i64)),
        ("rebind_adoptions", Json::Int(s.rebind_adoptions as i64)),
        ("sdc_solves", Json::Int(s.sdc_solves as i64)),
        ("sdc_constraints", Json::Int(s.sdc_constraints as i64)),
        ("sdc_retracts", Json::Int(s.sdc_retracts as i64)),
        ("sdc_relaxations", Json::Int(s.sdc_relaxations as i64)),
        ("portfolio_races", Json::Int(s.portfolio_races as i64)),
        ("wins_heuristic", Json::Int(s.wins_heuristic as i64)),
        ("wins_sdc", Json::Int(s.wins_sdc as i64)),
        ("wins_ilp", Json::Int(s.wins_ilp as i64)),
    ])
}

/// The `schedule` payload: per-layer slots, device descriptions, paths.
pub fn schedule_json(assay: &Assay, result: &SynthesisResult) -> Json {
    let layers: Vec<Json> = result
        .schedule
        .layers
        .iter()
        .map(|layer| {
            Json::Array(
                layer
                    .ops
                    .iter()
                    .map(|slot| {
                        obj(vec![
                            ("op", Json::Int(slot.op.index() as i64)),
                            ("name", Json::Str(assay.op(slot.op).name().to_owned())),
                            ("device", Json::Int(slot.device as i64)),
                            ("start", Json::Int(slot.start as i64)),
                            ("duration", Json::Int(slot.duration as i64)),
                        ])
                    })
                    .collect(),
            )
        })
        .collect();
    let devices: Vec<Json> = result
        .schedule
        .devices
        .iter()
        .map(|d| Json::Str(d.to_string()))
        .collect();
    let paths: Vec<Json> = result
        .schedule
        .paths
        .iter()
        .map(|&(a, b)| Json::Array(vec![Json::Int(a as i64), Json::Int(b as i64)]))
        .collect();
    obj(vec![
        ("layers", Json::Array(layers)),
        ("devices", Json::Array(devices)),
        ("paths", Json::Array(paths)),
    ])
}

/// Builds a complete ok response line for `id`.
///
/// `trace_fingerprint` carries the `trace` artifact when requested;
/// `diagnostics` payloads come from [`diagnostics_json`].
pub fn response_ok(
    id: &str,
    assay: &Assay,
    result: &SynthesisResult,
    artifacts: Artifacts,
    trace_fingerprint: Option<String>,
    delta_hit: bool,
    solver: &SolverKind,
) -> Json {
    let mut entries = vec![
        ("version", Json::Str(VERSION.to_owned())),
        ("type", Json::Str("response".to_owned())),
        ("id", Json::Str(id.to_owned())),
        ("status", Json::Str("ok".to_owned())),
    ];
    if artifacts.stats {
        entries.push(("stats", stats_json(assay, result)));
    }
    if artifacts.schedule {
        entries.push(("schedule", schedule_json(assay, result)));
    }
    if artifacts.gantt {
        entries.push((
            "gantt",
            Json::Str(mfhls_core::render::gantt(assay, &result.schedule, 90)),
        ));
    }
    if let Some(fp) = trace_fingerprint {
        entries.push(("trace_fingerprint", Json::Str(fp)));
    }
    if artifacts.diagnostics {
        entries.push(("diagnostics", diagnostics_json(result, delta_hit, solver)));
    }
    obj(entries)
}

/// The nondeterministic `diagnostics` payload: wall-clock runtime and the
/// per-run layer-cache split (which may vary with the thread count and,
/// for the shared cache, with cross-request interleaving). `cache_hits`
/// is the total; `cache_canonical_hits` (renumbered layers served via the
/// canonical index) and `cache_store_hits` (read-through fills from a
/// persistent store) are its classified subsets, the remainder being
/// exact in-memory hits. `delta_hit` marks a response replayed whole from
/// the service's delta cache — its other counters then describe the run
/// that originally produced the result. `solver` is echoed back as the
/// fully-resolved structured spec ([`crate::spec::spec_json`]) so clients
/// see exactly which strategy — defaults filled in — served the request.
pub fn diagnostics_json(result: &SynthesisResult, delta_hit: bool, solver: &SolverKind) -> Json {
    let hits: u64 = result.iterations.iter().map(|it| it.cache_hits).sum();
    let canonical: u64 = result
        .iterations
        .iter()
        .map(|it| it.cache_canonical_hits)
        .sum();
    let store: u64 = result.iterations.iter().map(|it| it.cache_store_hits).sum();
    let misses: u64 = result.iterations.iter().map(|it| it.cache_misses).sum();
    obj(vec![
        (
            "runtime_us",
            Json::Int(result.runtime.as_micros().min(i64::MAX as u128) as i64),
        ),
        ("cache_hits", Json::Int(hits as i64)),
        ("cache_canonical_hits", Json::Int(canonical as i64)),
        ("cache_store_hits", Json::Int(store as i64)),
        ("cache_misses", Json::Int(misses as i64)),
        ("delta_hit", Json::Bool(delta_hit)),
        ("solver", crate::spec::spec_json(solver)),
    ])
}

/// Builds an error response line. `id` is `null` when the failure
/// prevented reading one (malformed JSON).
pub fn response_error(id: Option<&str>, kind: ErrorKind, message: &str) -> Json {
    obj(vec![
        ("version", Json::Str(VERSION.to_owned())),
        ("type", Json::Str("response".to_owned())),
        (
            "id",
            match id {
                Some(id) => Json::Str(id.to_owned()),
                None => Json::Null,
            },
        ),
        ("status", Json::Str("error".to_owned())),
        (
            "error",
            obj(vec![
                ("kind", Json::Str(kind.as_str().to_owned())),
                ("message", Json::Str(message.to_owned())),
            ]),
        ),
    ])
}

/// `mfhls synth --format json` payload: the versioned stats + schedule
/// of a one-shot synthesis, on the same schema as service responses.
pub fn synth_json(assay: &Assay, result: &SynthesisResult) -> Json {
    obj(vec![
        ("version", Json::Str(VERSION.to_owned())),
        ("type", Json::Str("synthesis".to_owned())),
        ("assay", Json::Str(assay.name().to_owned())),
        ("stats", stats_json(assay, result)),
        ("schedule", schedule_json(assay, result)),
    ])
}

/// `mfhls simulate --format json` payload.
pub fn trial_stats_json(assay_name: &str, policy: &str, s: &TrialStats) -> Json {
    obj(vec![
        ("version", Json::Str(VERSION.to_owned())),
        ("type", Json::Str("simulation".to_owned())),
        ("assay", Json::Str(assay_name.to_owned())),
        ("policy", Json::Str(policy.to_owned())),
        ("trials", Json::Int(s.trials as i64)),
        (
            "makespan",
            obj(vec![
                ("min", Json::Int(s.min as i64)),
                ("median", Json::Int(s.median as i64)),
                ("p95", Json::Int(s.p95 as i64)),
                ("max", Json::Int(s.max as i64)),
                ("mean", Json::Int(s.mean as i64)),
            ]),
        ),
        ("decisions", Json::Int(s.decisions as i64)),
    ])
}

/// `mfhls faultsim --format json` payload: one survivability record per
/// policy.
pub fn survival_stats_json(assay_name: &str, stats: &[SurvivalStats]) -> Json {
    let policies: Vec<Json> = stats
        .iter()
        .map(|st| {
            obj(vec![
                ("policy", Json::Str(st.policy.to_owned())),
                ("trials", Json::Int(st.trials as i64)),
                ("completed_runs", Json::Int(st.completed_runs as i64)),
                ("completion_rate", Json::Float(st.completion_rate)),
                (
                    "mean_completed_fraction",
                    Json::Float(st.mean_completed_fraction),
                ),
                (
                    "mean_makespan_success",
                    match st.mean_makespan_success {
                        Some(m) => Json::Int(m as i64),
                        None => Json::Null,
                    },
                ),
                ("mean_resyntheses", Json::Float(st.mean_resyntheses)),
            ])
        })
        .collect();
    obj(vec![
        ("version", Json::Str(VERSION.to_owned())),
        ("type", Json::Str("faultsim".to_owned())),
        ("assay", Json::Str(assay_name.to_owned())),
        ("policies", Json::Array(policies)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth_req(extra: &str) -> String {
        format!(
            r#"{{"version":"mfhls-api/v1","type":"synthesize","id":"r1",
               "assay":{{"dsl":"assay \"t\"\nop a {{ duration: 1m }}"}}{extra}}}"#
        )
        .replace('\n', " ")
    }

    #[test]
    fn parses_minimal_request() {
        let Incoming::Synthesize(req) = parse_incoming(&synth_req("")).unwrap() else {
            panic!("expected a synthesize request");
        };
        assert_eq!(req.id, "r1");
        assert_eq!(req.artifacts, Artifacts::default());
        assert!(req.artifacts.stats);
        assert!(req.deadline_ms.is_none());
        let assay = req.resolve_assay(64).unwrap();
        assert_eq!(assay.len(), 1);
        let config = req.resolve_config().unwrap();
        assert_eq!(config.max_devices, SynthConfig::default().max_devices);
    }

    #[test]
    fn parses_controls() {
        assert_eq!(
            parse_incoming(r#"{"type":"flush"}"#).unwrap(),
            Incoming::Flush
        );
        assert_eq!(
            parse_incoming(r#"{"type":"shutdown"}"#).unwrap(),
            Incoming::Shutdown
        );
        assert_eq!(
            parse_incoming(r#"{"type":"cancel","id":"r7"}"#).unwrap(),
            Incoming::Cancel("r7".to_owned())
        );
    }

    #[test]
    fn rejects_bad_envelopes() {
        let cases = [
            ("not json", ErrorKind::MalformedRequest),
            (r#"{"id":"x"}"#, ErrorKind::MalformedRequest),
            (r#"{"type":"teleport"}"#, ErrorKind::MalformedRequest),
            (
                r#"{"version":"mfhls-api/v2","type":"flush"}"#,
                ErrorKind::UnsupportedVersion,
            ),
            (
                r#"{"type":"synthesize","id":"r1","assay":{"dsl":"x"}}"#,
                ErrorKind::MalformedRequest, // missing version
            ),
            (
                r#"{"version":"mfhls-api/v1","type":"synthesize","id":"","assay":{"dsl":"x"}}"#,
                ErrorKind::MalformedRequest, // empty id
            ),
            (
                r#"{"version":"mfhls-api/v1","type":"synthesize","id":"r1","assay":{}}"#,
                ErrorKind::MalformedRequest,
            ),
        ];
        for (line, want) in cases {
            let e = parse_incoming(line).unwrap_err();
            assert_eq!(e.kind, want, "line {line}: {e}");
        }
    }

    #[test]
    fn artifacts_and_config_overrides() {
        let Incoming::Synthesize(req) = parse_incoming(&synth_req(
            r#","artifacts":["schedule","gantt"],
               "config":{"max_devices":9,"solver":"hybrid","min_improvement":0.2},
               "deadline_ms":0"#,
        ))
        .unwrap() else {
            panic!("expected a synthesize request");
        };
        assert!(!req.artifacts.stats);
        assert!(req.artifacts.schedule && req.artifacts.gantt);
        assert_eq!(req.deadline_ms, Some(0));
        let config = req.resolve_config().unwrap();
        assert_eq!(config.max_devices, 9);
        assert_eq!(config.min_improvement, 0.2);
        assert!(matches!(config.solver, SolverKind::Hybrid { .. }));
    }

    #[test]
    fn config_errors_are_typed() {
        for (overrides, needle) in [
            (r#"{"max_devices":0}"#, "max_devices"),
            (r#"{"min_improvement":1.5}"#, "min_improvement"),
            (r#"{"solver":"quantum"}"#, "quantum"),
            (r#"{"warp":9}"#, "warp"),
            (r#"{"weights":[1,2]}"#, "four"),
        ] {
            let line = synth_req(&format!(r#","config":{overrides}"#));
            let Incoming::Synthesize(req) = parse_incoming(&line).unwrap() else {
                panic!("expected a synthesize request");
            };
            let e = req.resolve_config().unwrap_err();
            assert_eq!(e.kind, ErrorKind::ConfigError, "{e}");
            assert!(e.message.contains(needle), "{e}");
        }
    }

    #[test]
    fn dsl_and_benchmark_resolution() {
        let Incoming::Synthesize(req) = parse_incoming(
            r#"{"version":"mfhls-api/v1","type":"synthesize","id":"b1",
               "assay":{"benchmark":"kinase","scale":2}}"#
                .replace('\n', " ")
                .as_str(),
        )
        .unwrap() else {
            panic!("expected a synthesize request");
        };
        let assay = req.resolve_assay(64).unwrap();
        assert_eq!(assay.len(), 16); // the paper's case 1
        let e = req.resolve_assay(4).unwrap_err();
        assert_eq!(e.kind, ErrorKind::ParseError);

        let Incoming::Synthesize(bad) = parse_incoming(
            r#"{"version":"mfhls-api/v1","type":"synthesize","id":"b2",
               "assay":{"benchmark":"mystery"}}"#
                .replace('\n', " ")
                .as_str(),
        )
        .unwrap() else {
            panic!("expected a synthesize request");
        };
        assert_eq!(
            bad.resolve_assay(64).unwrap_err().kind,
            ErrorKind::ParseError
        );
    }

    #[test]
    fn netlist_requests_resolve_and_reject() {
        let line = r#"{"version":"mfhls-api/v1","type":"synthesize","id":"n1",
            "assay":{"netlist":{"version":"mfhls-netlist/v1","name":"net",
            "ops":[{"id":0,"name":"mix","duration":{"fixed":4}},
                   {"id":1,"name":"read","accessories":["optical-system"],
                    "duration":{"min":2}}],
            "edges":[[0,1]]}}}"#
            .replace('\n', " ");
        let Incoming::Synthesize(req) = parse_incoming(&line).unwrap() else {
            panic!("expected a synthesize request");
        };
        assert!(matches!(req.assay, AssaySource::Netlist(_)));
        let assay = req.resolve_assay(64).unwrap();
        assert_eq!(assay.len(), 2);
        assert_eq!(assay.name(), "net");
        assert!(assay.op(mfhls_core::OpId(1)).is_indeterminate());
        // The op limit applies to netlists too.
        let e = req.resolve_assay(1).unwrap_err();
        assert_eq!(e.kind, ErrorKind::ParseError);
        assert!(e.message.contains("limit of 1"), "{e}");
        // A dangling edge is a ParseError naming the field.
        let bad = line.replace("[0,1]", "[0,5]");
        let Incoming::Synthesize(req) = parse_incoming(&bad).unwrap() else {
            panic!("expected a synthesize request");
        };
        let e = req.resolve_assay(64).unwrap_err();
        assert_eq!(e.kind, ErrorKind::ParseError);
        assert!(e.message.contains("netlist.edges[0][1]"), "{e}");
        // A non-object netlist is malformed at parse time.
        let e = parse_incoming(
            r#"{"version":"mfhls-api/v1","type":"synthesize","id":"n2","assay":{"netlist":7}}"#,
        )
        .unwrap_err();
        assert_eq!(e.kind, ErrorKind::MalformedRequest);
        assert!(e.message.contains("netlist"), "{e}");
    }

    #[test]
    fn canonical_bytes_ignore_wire_formatting() {
        // Same content, different whitespace and field order on the wire.
        let a = parse_incoming(
            r#"{"version":"mfhls-api/v1","type":"synthesize","id":"r1","assay":{"dsl":"assay \"t\"\nop a { duration: 1m }"},"deadline_ms":5}"#,
        )
        .unwrap();
        let b = parse_incoming(
            r#"{ "deadline_ms": 5, "id": "r1", "type": "synthesize", "assay": { "dsl": "assay \"t\"\nop a { duration: 1m }" }, "version": "mfhls-api/v1" }"#,
        )
        .unwrap();
        let (Incoming::Synthesize(a), Incoming::Synthesize(b)) = (a, b) else {
            panic!("expected synthesize requests");
        };
        assert_eq!(a.canonical_request_bytes(), b.canonical_request_bytes());
        // Different content diverges.
        let Incoming::Synthesize(c) = parse_incoming(&synth_req(r#","deadline_ms":6"#)).unwrap()
        else {
            panic!("expected a synthesize request");
        };
        assert_ne!(a.canonical_request_bytes(), c.canonical_request_bytes());
    }

    #[test]
    fn responses_carry_version_and_kind() {
        let text = response_error(Some("r1"), ErrorKind::Overloaded, "queue full").to_string();
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.get("version").and_then(Json::as_str), Some(VERSION));
        assert_eq!(v.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("overloaded")
        );
        let anon = response_error(None, ErrorKind::MalformedRequest, "bad line");
        assert_eq!(anon.get("id"), Some(&Json::Null));
    }

    #[test]
    fn ok_response_excludes_nondeterministic_fields_by_default() {
        use mfhls_core::Synthesizer;
        let assay = mfhls_assays::kinase_activity(1);
        let result = Synthesizer::new(SynthConfig::default())
            .run(&assay)
            .unwrap();
        let solver = SolverKind::default();
        let text = response_ok(
            "r1",
            &assay,
            &result,
            Artifacts::default(),
            None,
            false,
            &solver,
        )
        .to_string();
        assert!(!text.contains("runtime"), "{text}");
        assert!(!text.contains("cache_"), "{text}");
        let v = Json::parse(&text).unwrap();
        let stats = v.get("stats").unwrap();
        assert!(stats.get("exec_time").is_some());
        assert!(stats.get("solver").is_some());
        // diagnostics artifact opts in, and echoes the resolved spec.
        let with = response_ok(
            "r1",
            &assay,
            &result,
            Artifacts {
                diagnostics: true,
                ..Artifacts::default()
            },
            None,
            false,
            &solver,
        )
        .to_string();
        assert!(with.contains("runtime_us"), "{with}");
        assert!(with.contains("cache_canonical_hits"), "{with}");
        assert!(with.contains("cache_store_hits"), "{with}");
        assert!(with.contains("\"delta_hit\":false"), "{with}");
        assert!(
            with.contains("\"solver\":{\"kind\":\"heuristic\""),
            "{with}"
        );
    }
}
