//! A minimal wall-clock benchmarking harness.
//!
//! The workspace builds with no network access, so instead of Criterion we
//! carry this small warm-up + sample loop. It reports min/median/mean over
//! a fixed sample count — enough to spot order-of-magnitude regressions in
//! the substrate algorithms. `cargo bench` still works because the bench
//! targets keep `harness = false` and provide plain `fn main()`s.

use std::time::{Duration, Instant};

/// Timing summary of one benchmark: min/median/mean over the samples.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Fastest sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// Mean over all samples.
    pub mean: Duration,
    /// Number of recorded samples.
    pub count: usize,
}

/// Sample count from `MFHLS_BENCH_SAMPLES` (CI smoke runs set a small
/// value), falling back to `default`.
pub fn samples_from_env(default: usize) -> usize {
    std::env::var("MFHLS_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(default)
}

/// Times `f` over `samples` runs (after `warmup` unrecorded runs) and
/// returns the timing summary together with the last run's output.
pub fn measure<T>(samples: usize, mut f: impl FnMut() -> T) -> (Sample, T) {
    let warmup = samples.div_ceil(5).max(1);
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    let mut last = None;
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        last = Some(std::hint::black_box(f()));
        times.push(t0.elapsed());
    }
    times.sort();
    let median = times[times.len() / 2];
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let sample = Sample {
        min: times[0],
        median,
        mean,
        count: times.len(),
    };
    (sample, last.expect("at least one sample runs"))
}

/// Times `f` over `samples` runs (after `warmup` unrecorded runs) and
/// prints one `group/name` result line.
pub fn bench<T>(group: &str, name: &str, samples: usize, f: impl FnMut() -> T) {
    let (s, _) = measure(samples, f);
    println!(
        "{group}/{name:<24} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        s.min, s.median, s.mean, s.count
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_runs_and_counts() {
        let mut calls = 0u32;
        super::bench("t", "noop", 3, || calls += 1);
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }
}
