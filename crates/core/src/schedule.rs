//! Hybrid schedules: per-layer sub-schedules plus chip-level resources.

use crate::{Assay, CoreError, OpId};
use mfhls_chip::{DeviceConfig, Netlist};
use std::collections::BTreeSet;

/// One operation's slot in a sub-schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledOp {
    /// The operation.
    pub op: OpId,
    /// Index of the device it is bound to.
    pub device: usize,
    /// Start time within the layer (time units from the layer barrier).
    pub start: u64,
    /// Scheduled duration (the minimum for indeterminate operations).
    pub duration: u64,
    /// Transport time `t_p` reserved after the operation (eq. 10–11 hold
    /// the device through transport).
    pub transport: u64,
}

impl ScheduledOp {
    /// Time at which the device becomes free again: `start + duration +
    /// transport`.
    pub fn release_time(&self) -> u64 {
        self.start + self.duration + self.transport
    }

    /// Completion time of the operation itself (excluding transport).
    pub fn finish(&self) -> u64 {
        self.start + self.duration
    }
}

/// The fixed sub-schedule of one layer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LayerSchedule {
    /// Slots, sorted by (start, op).
    pub ops: Vec<ScheduledOp>,
}

impl LayerSchedule {
    /// Creates a layer schedule, normalising slot order.
    pub fn new(mut ops: Vec<ScheduledOp>) -> Self {
        ops.sort_by_key(|s| (s.start, s.op));
        LayerSchedule { ops }
    }

    /// Fixed makespan of the layer: the latest finish over all slots,
    /// counting indeterminate operations at their minimum duration.
    pub fn makespan(&self) -> u64 {
        self.ops.iter().map(|s| s.finish()).max().unwrap_or(0)
    }

    /// The slot of `op`, if scheduled in this layer.
    pub fn slot(&self, op: OpId) -> Option<&ScheduledOp> {
        self.ops.iter().find(|s| s.op == op)
    }

    /// Whether the layer ends with at least one indeterminate operation.
    pub fn has_indeterminate(&self, assay: &Assay) -> bool {
        self.ops.iter().any(|s| assay.op(s.op).is_indeterminate())
    }
}

/// Total assay execution time in the hybrid accounting of Table 2:
/// a fixed part (minutes) plus one symbolic extra `I_k` per layer that ends
/// with indeterminate operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecTime {
    /// Sum of fixed layer makespans (indeterminate ops at minimum duration).
    pub fixed: u64,
    /// Indices (1-based, as printed) of layers contributing an `I_k` extra.
    pub indeterminate_layers: Vec<usize>,
}

impl std::fmt::Display for ExecTime {
    /// Formats as the paper does, e.g. `492m+I1+I2`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}m", self.fixed)?;
        for k in &self.indeterminate_layers {
            write!(f, "+I{k}")?;
        }
        Ok(())
    }
}

/// A complete hybrid-scheduling solution: one fixed sub-schedule per layer,
/// the instantiated devices, and the transportation paths between them.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridSchedule {
    /// Per-layer sub-schedules, in execution order.
    pub layers: Vec<LayerSchedule>,
    /// Device configurations, indexed by the device ids in the slots.
    pub devices: Vec<DeviceConfig>,
    /// Distinct transportation paths (unordered device-index pairs).
    pub paths: BTreeSet<(usize, usize)>,
}

impl HybridSchedule {
    /// Total execution time in hybrid accounting.
    pub fn exec_time(&self, assay: &Assay) -> ExecTime {
        ExecTime {
            fixed: self.layers.iter().map(LayerSchedule::makespan).sum(),
            indeterminate_layers: self
                .layers
                .iter()
                .enumerate()
                .filter(|(_, l)| l.has_indeterminate(assay))
                .map(|(i, _)| i + 1)
                .collect(),
        }
    }

    /// Number of devices actually used by at least one operation.
    pub fn used_device_count(&self) -> usize {
        let used: BTreeSet<usize> = self
            .layers
            .iter()
            .flat_map(|l| l.ops.iter().map(|s| s.device))
            .collect();
        used.len()
    }

    /// Number of distinct transportation paths (`sum_p`).
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// The slot of `op`, searching all layers.
    pub fn slot(&self, op: OpId) -> Option<&ScheduledOp> {
        self.layers.iter().find_map(|l| l.slot(op))
    }

    /// The device index bound to each operation, indexed by op id.
    ///
    /// # Panics
    ///
    /// Panics if some operation of `assay` is missing from the schedule
    /// (validate first).
    pub fn device_of(&self, assay: &Assay) -> Vec<usize> {
        assay
            .op_ids()
            .map(|o| self.slot(o).expect("op scheduled").device)
            .collect()
    }

    /// Builds a chip netlist (devices + per-path transfer counts) from the
    /// binding, for layout estimation and SVG export.
    pub fn to_netlist(&self, assay: &Assay) -> Netlist {
        let mut net = Netlist::new();
        let ids: Vec<_> = self
            .devices
            .iter()
            .map(|cfg| net.add_device(*cfg))
            .collect();
        for (p, c) in assay.dependencies() {
            if let (Some(sp), Some(sc)) = (self.slot(p), self.slot(c)) {
                net.record_transfer(ids[sp.device], ids[sc.device])
                    .expect("device ids are dense");
            }
        }
        net
    }

    /// Validates the schedule against every paper constraint; see
    /// [`crate::validate::validate_schedule`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSchedule`] describing the first violated
    /// constraint.
    pub fn validate(&self, assay: &Assay) -> Result<(), CoreError> {
        crate::validate::validate_schedule(assay, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Duration, Operation};

    #[test]
    fn release_and_finish() {
        let s = ScheduledOp {
            op: OpId(0),
            device: 0,
            start: 5,
            duration: 10,
            transport: 2,
        };
        assert_eq!(s.finish(), 15);
        assert_eq!(s.release_time(), 17);
    }

    #[test]
    fn layer_makespan() {
        let l = LayerSchedule::new(vec![
            ScheduledOp {
                op: OpId(1),
                device: 0,
                start: 0,
                duration: 4,
                transport: 1,
            },
            ScheduledOp {
                op: OpId(0),
                device: 1,
                start: 2,
                duration: 5,
                transport: 0,
            },
        ]);
        assert_eq!(l.makespan(), 7);
        // Normalised order: by start.
        assert_eq!(l.ops[0].op, OpId(1));
    }

    #[test]
    fn exec_time_display() {
        let t = ExecTime {
            fixed: 492,
            indeterminate_layers: vec![1, 2],
        };
        assert_eq!(t.to_string(), "492m+I1+I2");
        let t2 = ExecTime {
            fixed: 225,
            indeterminate_layers: vec![],
        };
        assert_eq!(t2.to_string(), "225m");
    }

    #[test]
    fn schedule_metrics() {
        let mut assay = Assay::new("t");
        let a = assay.add_op(Operation::new("a").with_duration(Duration::fixed(4)));
        let b = assay.add_op(Operation::new("b").with_duration(Duration::at_least(2)));
        assay.add_dependency(a, b).unwrap();

        let sched = HybridSchedule {
            layers: vec![LayerSchedule::new(vec![
                ScheduledOp {
                    op: a,
                    device: 0,
                    start: 0,
                    duration: 4,
                    transport: 1,
                },
                ScheduledOp {
                    op: b,
                    device: 1,
                    start: 5,
                    duration: 2,
                    transport: 0,
                },
            ])],
            devices: vec![
                mfhls_chip::DeviceConfig::new(
                    mfhls_chip::ContainerKind::Chamber,
                    mfhls_chip::Capacity::Small,
                    mfhls_chip::AccessorySet::empty(),
                )
                .unwrap();
                2
            ],
            paths: [(0, 1)].into_iter().collect(),
        };
        assert_eq!(sched.used_device_count(), 2);
        assert_eq!(sched.path_count(), 1);
        let t = sched.exec_time(&assay);
        assert_eq!(t.fixed, 7);
        assert_eq!(t.indeterminate_layers, vec![1]);
        assert_eq!(sched.device_of(&assay), vec![0, 1]);
        let net = sched.to_netlist(&assay);
        assert_eq!(net.path_count(), 1);
    }
}
