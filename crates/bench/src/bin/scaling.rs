//! Scaling study: synthesis runtime and solution metrics vs assay size,
//! on the single-cell RT-qPCR protocol replicated to 5..80 cells
//! (30..480 operations).
//!
//! ```text
//! cargo run --release -p mfhls-bench --bin scaling
//! ```
//!
//! The paper demonstrates 120 operations; this study shows the heuristic
//! pipeline comfortably extends past it (near-quadratic runtime growth
//! from the improvement passes, still sub-second per case).

use mfhls_bench::{fmt_runtime, print_table, run_ours};
use mfhls_core::SynthConfig;

fn main() {
    println!("Scaling: single-cell RT-qPCR, 6 ops per cell, |D| = 25, t = 10\n");
    let sizes = [5usize, 10, 20, 40, 80];
    // Each cell count is an independent synthesis; fan out across the pool
    // and keep the rows in input order.
    let rows: Vec<Vec<String>> = mfhls_par::par_map(&sizes, |&cells| {
        let assay = mfhls_assays::rtqpcr(cells);
        let r = run_ours(&assay, SynthConfig::default());
        vec![
            cells.to_string(),
            assay.len().to_string(),
            r.result.layering.num_layers().to_string(),
            r.exec.clone(),
            r.devices.to_string(),
            r.paths.to_string(),
            fmt_runtime(r.runtime),
        ]
    });
    print_table(
        &[
            "cells",
            "#Op",
            "layers",
            "Exe. Time",
            "#D.",
            "#P.",
            "Runtime",
        ],
        &rows,
    );
}
