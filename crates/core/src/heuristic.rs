//! Scalable heuristic layer solver: priority list scheduling with greedy
//! component-oriented binding and re-binding improvement.
//!
//! The faithful ILP model (see [`crate::ilp_model`]) is exact but only
//! practical for small layers; this solver handles the paper's 70/120-op
//! benchmarks. It optimises the same objective
//! (`C_t·sum_t + C_a·sum_a + C_pr·sum_pr + C_p·sum_p`) and its output
//! passes the same validator.
//!
//! Construction:
//!
//! 1. Determinate ops are list-scheduled in critical-path (bottom-level)
//!    priority order; each op picks the device minimising
//!    `C_t·(projected release) + capex + path cost`, where candidates are
//!    compatible existing devices, retrofittable devices created by this
//!    layer (component-oriented mode only), or a fresh cheapest device.
//! 2. Indeterminate ops are placed last on pairwise-distinct devices and
//!    their starts are aligned at the latest earliest-start, which
//!    satisfies eq. 14 by construction.
//!
//! Improvement: a configurable number of passes that try re-binding every
//! operation to every alternative device and keep strict improvements.

use crate::problem::path_key;
use crate::{CoreError, LayerProblem, LayerSolution, LayerSolver, OpId, ScheduledOp};
use mfhls_chip::DeviceConfig;
use mfhls_graph::BitSet;
use std::collections::{BTreeMap, BTreeSet};

/// The heuristic solver; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct HeuristicLayerSolver {
    /// Number of re-binding improvement passes.
    pub improvement_passes: usize,
}

impl Default for HeuristicLayerSolver {
    fn default() -> Self {
        HeuristicLayerSolver {
            improvement_passes: 2,
        }
    }
}

impl LayerSolver for HeuristicLayerSolver {
    fn solve(&self, p: &LayerProblem<'_>) -> Result<LayerSolution, CoreError> {
        let ctx = Ctx::new(p);
        let (det_order, ind_order) = priority_orders(p)?;
        let mut best = construct(p, &ctx, &det_order, &ind_order)?;

        let mut rounds = 0u64;
        let mut adoptions = 0u64;
        for _ in 0..self.improvement_passes {
            rounds += 1;
            let mut improved_any = false;
            for &op in p.ops.iter() {
                // Re-derive the binding after every adoption: device indices
                // may have been renumbered by pruning.
                let binding: BTreeMap<OpId, usize> =
                    best.slots.iter().map(|s| (s.op, s.device)).collect();
                let Some(&current) = binding.get(&op) else {
                    return Err(CoreError::Internal(format!(
                        "layer solution lost operation o{}",
                        op.index()
                    )));
                };
                let alternatives: Vec<usize> =
                    (0..best.devices.len()).filter(|&d| d != current).collect();
                // Adoption rule: the first improving device in ascending
                // order. The parallel path evaluates every alternative and
                // keeps the first improving one, which is exactly what the
                // sequential early-break finds — results are identical at
                // any thread count.
                let adopted = if mfhls_par::max_threads() > 1 && alternatives.len() > 1 {
                    mfhls_par::par_map(&alternatives, |&d| {
                        let mut cand = binding.clone();
                        cand.insert(op, d);
                        schedule_with_binding(p, &ctx, &det_order, &ind_order, &cand, &best)
                            .filter(|sol| sol.objective < best.objective)
                    })
                    .into_iter()
                    .flatten()
                    .next()
                } else {
                    let mut found = None;
                    for &d in &alternatives {
                        let mut cand = binding.clone();
                        cand.insert(op, d);
                        if let Some(sol) =
                            schedule_with_binding(p, &ctx, &det_order, &ind_order, &cand, &best)
                        {
                            if sol.objective < best.objective {
                                found = Some(sol);
                                break; // next op, with a fresh binding map
                            }
                        }
                    }
                    found
                };
                if let Some(sol) = adopted {
                    best = sol;
                    improved_any = true;
                    adoptions += 1;
                }
            }
            if !improved_any {
                break;
            }
        }
        best.stats.heuristic_rounds = rounds;
        best.stats.rebind_adoptions = adoptions;
        Ok(best)
    }
}

/// A set of unordered device-index pairs `(a, b)` with `a <= b` (the shape
/// produced by [`path_key`]), backed by a fixed-capacity bitset over
/// `a * cap + b`. Replaces the per-candidate `BTreeSet<(usize, usize)>`
/// allocations on the binding hot path.
#[derive(Clone)]
struct PairSet {
    bits: BitSet,
    cap: usize,
}

impl PairSet {
    /// Capacity for device indices `0..cap`.
    fn new(cap: usize) -> PairSet {
        PairSet {
            bits: BitSet::new(cap * cap),
            cap,
        }
    }

    fn encode(&self, (a, b): (usize, usize)) -> usize {
        debug_assert!(a <= b, "pair keys are ordered");
        a * self.cap + b
    }

    fn contains(&self, key: (usize, usize)) -> bool {
        self.bits.contains(self.encode(key))
    }

    fn insert(&mut self, key: (usize, usize)) -> bool {
        let k = self.encode(key);
        self.bits.insert(k)
    }

    fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let cap = self.cap;
        self.bits.iter().map(move |k| (k / cap, k % cap))
    }
}

/// Immutable per-problem context computed once per [`HeuristicLayerSolver::solve`]
/// call: in-layer parent lists, internal-child flags, fresh-device configs,
/// and the existing-path bitset. Hoists the per-candidate `assay.parents`
/// edge scans and `BTreeSet` rebuilds out of the hot scheduling loops.
/// `pub(crate)`: the SDC legalizer (`crate::sdc_model`) drives the same
/// binding machinery under its own construction order.
pub(crate) struct Ctx {
    /// In-layer parents per *global* op index. Ops outside the layer never
    /// hold slots, so only in-layer parents can constrain ready times or
    /// contribute paths.
    parents: Vec<Vec<OpId>>,
    /// Whether the (layer) op has at least one child inside the layer.
    internal_child: Vec<bool>,
    /// Fresh-device config per global op index (layer ops only).
    fresh: Vec<Option<DeviceConfig>>,
    /// Paths that already exist on the chip.
    existing: PairSet,
    /// Device-index capacity of every [`PairSet`] of this problem: the
    /// inherited pool plus at most one created device per layer op.
    pair_cap: usize,
}

impl Ctx {
    pub(crate) fn new(p: &LayerProblem<'_>) -> Ctx {
        let n = p.assay.len();
        let mut in_layer = vec![false; n];
        for &o in &p.ops {
            in_layer[o.index()] = true;
        }
        let mut parents: Vec<Vec<OpId>> = vec![Vec::new(); n];
        let mut internal_child = vec![false; n];
        for (q, c) in p.assay.dependencies() {
            if in_layer[q.index()] && in_layer[c.index()] {
                parents[c.index()].push(q);
                internal_child[q.index()] = true;
            }
        }
        let mut fresh = vec![None; n];
        for &o in &p.ops {
            fresh[o.index()] = fresh_config(p, o);
        }
        let pair_cap = p.devices.len() + p.ops.len() + 1;
        let mut existing = PairSet::new(pair_cap);
        for &k in &p.existing_paths {
            existing.insert(k);
        }
        Ctx {
            parents,
            internal_child,
            fresh,
            existing,
            pair_cap,
        }
    }
}

/// Splits the layer's ops into a list-scheduling order for determinate ops
/// and a priority order for indeterminate ones.
pub(crate) fn priority_orders(p: &LayerProblem<'_>) -> Result<(Vec<OpId>, Vec<OpId>), CoreError> {
    let idx_of: BTreeMap<OpId, usize> = p.ops.iter().enumerate().map(|(i, &o)| (o, i)).collect();
    let n = p.ops.len();
    let mut g = mfhls_graph::Digraph::new(n);
    for (a, b) in p.internal_deps() {
        let (Some(&ia), Some(&ib)) = (idx_of.get(&a), idx_of.get(&b)) else {
            return Err(CoreError::Internal(format!(
                "internal dependency o{}->o{} references an op outside the layer",
                a.index(),
                b.index()
            )));
        };
        g.add_edge(ia, ib)
            .map_err(|e| CoreError::Internal(format!("layer DAG edge: {e}")))?;
    }
    let weights: Vec<u64> = p
        .ops
        .iter()
        .map(|&o| p.assay.op(o).duration().min_duration() + p.transport.of(o))
        .collect();
    let bl = mfhls_graph::topo::bottom_levels(&g, &weights)
        .map_err(|e| CoreError::Internal(format!("layer DAG is cyclic: {e}")))?;

    // List order: repeatedly emit the ready determinate op with the highest
    // bottom level (ties: smaller id).
    let det: BTreeSet<usize> = (0..n)
        .filter(|&i| !p.assay.op(p.ops[i]).is_indeterminate())
        .collect();
    let mut remaining_parents: Vec<usize> = (0..n)
        .map(|i| {
            g.predecessors(i)
                .iter()
                .filter(|&&q| det.contains(&q))
                .count()
        })
        .collect();
    let mut emitted = vec![false; n];
    let mut det_order = Vec::with_capacity(det.len());
    while det_order.len() < det.len() {
        let Some(next) = det
            .iter()
            .copied()
            .filter(|&i| !emitted[i] && remaining_parents[i] == 0)
            .max_by_key(|&i| (bl[i], std::cmp::Reverse(i)))
        else {
            return Err(CoreError::Internal(
                "no ready determinate op in an acyclic layer".to_owned(),
            ));
        };
        emitted[next] = true;
        det_order.push(p.ops[next]);
        for &c in g.successors(next) {
            if det.contains(&next) {
                remaining_parents[c] = remaining_parents[c].saturating_sub(1);
            }
        }
    }
    let mut ind_order: Vec<usize> = (0..n).filter(|i| !det.contains(i)).collect();
    ind_order.sort_by_key(|&i| (std::cmp::Reverse(bl[i]), i));
    Ok((det_order, ind_order.into_iter().map(|i| p.ops[i]).collect()))
}

/// Mutable scheduling state shared by construction and re-evaluation.
struct State<'p, 'a> {
    p: &'p LayerProblem<'a>,
    ctx: &'p Ctx,
    devices: Vec<DeviceConfig>,
    /// Device indices created by this layer.
    created: BTreeSet<usize>,
    avail: Vec<u64>,
    slots: BTreeMap<OpId, ScheduledOp>,
    new_paths: PairSet,
    /// Creation quotas per fresh config (see [`provision_quotas`]); empty
    /// when quotas are not enforced (re-evaluation never creates devices).
    quotas: BTreeMap<DeviceConfig, usize>,
    /// Devices created so far per fresh config.
    created_of: BTreeMap<DeviceConfig, usize>,
    /// `compat_any[op]` — some current device can host `op`. Maintained
    /// incrementally by [`apply_decision`] (devices are only appended or
    /// gain accessories, so compatibility never regresses). Empty until
    /// [`State::init_compat`] runs; only `construct` needs it.
    compat_any: Vec<bool>,
}

impl<'p, 'a> State<'p, 'a> {
    fn new(p: &'p LayerProblem<'a>, ctx: &'p Ctx) -> Self {
        State {
            p,
            ctx,
            devices: p.devices.clone(),
            created: BTreeSet::new(),
            avail: vec![0; p.devices.len()],
            slots: BTreeMap::new(),
            new_paths: PairSet::new(ctx.pair_cap),
            quotas: BTreeMap::new(),
            created_of: BTreeMap::new(),
            compat_any: Vec::new(),
        }
    }

    /// Earliest start of `op` given its already-scheduled in-layer parents.
    fn ready_time(&self, op: OpId) -> u64 {
        self.ctx.parents[op.index()]
            .iter()
            .filter_map(|q| self.slots.get(q))
            .map(|s| s.start + s.duration + self.p.transport.of(s.op))
            .max()
            .unwrap_or(0)
    }

    /// Populates `compat_any` from the current device pool.
    fn init_compat(&mut self) {
        let mut compat = vec![false; self.p.assay.len()];
        for &op in &self.p.ops {
            compat[op.index()] = (0..self.devices.len()).any(|d| device_compatible(self, op, d));
        }
        self.compat_any = compat;
    }

    /// Re-checks still-unsatisfiable ops against device `d` after it was
    /// created or retrofitted.
    fn refresh_compat_for(&mut self, d: usize) {
        if self.compat_any.is_empty() {
            return;
        }
        for i in 0..self.p.ops.len() {
            let op = self.p.ops[i];
            if !self.compat_any[op.index()] && device_compatible(self, op, d) {
                self.compat_any[op.index()] = true;
            }
        }
    }

    /// Number of distinct *new* paths that binding `op` to `device` would
    /// create.
    fn added_path_count(&self, op: OpId, device: usize) -> u64 {
        let mut added: Vec<(usize, usize)> = Vec::new();
        for q in &self.ctx.parents[op.index()] {
            if let Some(s) = self.slots.get(q) {
                if s.device != device {
                    let k = path_key(s.device, device);
                    if !self.ctx.existing.contains(k)
                        && !self.new_paths.contains(k)
                        && !added.contains(&k)
                    {
                        added.push(k);
                    }
                }
            }
        }
        for &(child, pd) in &self.p.cross_inputs {
            if child == op && pd != device {
                let k = path_key(pd, device);
                if !self.ctx.existing.contains(k)
                    && !self.new_paths.contains(k)
                    && !added.contains(&k)
                {
                    added.push(k);
                }
            }
        }
        added.len() as u64
    }

    /// Inserts the new paths that binding `op` to `device` creates.
    fn commit_paths(&mut self, op: OpId, device: usize) {
        for qi in 0..self.ctx.parents[op.index()].len() {
            let q = self.ctx.parents[op.index()][qi];
            if let Some(s) = self.slots.get(&q) {
                if s.device != device {
                    let k = path_key(s.device, device);
                    if !self.ctx.existing.contains(k) {
                        self.new_paths.insert(k);
                    }
                }
            }
        }
        for ci in 0..self.p.cross_inputs.len() {
            let (child, pd) = self.p.cross_inputs[ci];
            if child == op && pd != device {
                let k = path_key(pd, device);
                if !self.ctx.existing.contains(k) {
                    self.new_paths.insert(k);
                }
            }
        }
    }

    /// Records a slot and its induced paths.
    fn commit(&mut self, op: OpId, device: usize, start: u64) {
        let dur = self.p.assay.op(op).duration().min_duration();
        let transport = if self.ctx.internal_child[op.index()] {
            self.p.transport.of(op)
        } else {
            0
        };
        self.commit_paths(op, device);
        self.slots.insert(
            op,
            ScheduledOp {
                op,
                device,
                start,
                duration: dur,
                transport,
            },
        );
        self.avail[device] = self.avail[device].max(start + dur + transport);
    }

    /// Capex of creating / retrofitting relative to the current configs.
    fn capex(&self, decision: &Decision) -> u64 {
        let w = self.p.weights;
        match decision {
            Decision::Existing(_) => 0,
            Decision::Retrofit { device, union } => {
                let extra: u64 = union
                    .iter()
                    .filter(|a| !self.devices[*device].accessories().contains(*a))
                    .map(|a| self.p.costs.accessory_processing(a))
                    .sum();
                w.processing * extra
            }
            Decision::New(cfg) => {
                w.area * self.p.costs.device_area(cfg)
                    + w.processing * self.p.costs.device_processing(cfg)
            }
        }
    }

    /// Finalises into a [`LayerSolution`], pruning created-but-unused
    /// devices and renumbering.
    fn finish(mut self) -> LayerSolution {
        let used: BTreeSet<usize> = self.slots.values().map(|s| s.device).collect();
        let keep: Vec<usize> = (0..self.devices.len())
            .filter(|d| !self.created.contains(d) || used.contains(d))
            .collect();
        let remap: BTreeMap<usize, usize> = keep.iter().enumerate().map(|(n, &o)| (o, n)).collect();
        self.devices = keep.iter().map(|&o| self.devices[o]).collect();
        let slots: Vec<ScheduledOp> = self
            .slots
            .into_values()
            .map(|mut s| {
                s.device = remap[&s.device];
                s
            })
            .collect();
        let new_paths: BTreeSet<(usize, usize)> = self
            .new_paths
            .iter()
            .map(|(a, b)| path_key(remap[&a], remap[&b]))
            .collect();
        let new_devices: Vec<usize> = self
            .created
            .iter()
            .filter_map(|o| remap.get(o).copied())
            .collect();

        let makespan = slots
            .iter()
            .map(|s| s.start + s.duration)
            .max()
            .unwrap_or(0);
        let w = self.p.weights;
        let mut area = 0u64;
        let mut proc = 0u64;
        for &d in &new_devices {
            area += self.p.costs.device_area(&self.devices[d]);
            proc += self.p.costs.device_processing(&self.devices[d]);
        }
        let objective = w.time * makespan
            + w.area * area
            + w.processing * proc
            + w.paths * new_paths.len() as u64;
        LayerSolution {
            slots,
            devices: self.devices,
            new_devices,
            new_paths,
            objective,
            stats: crate::SolverStats::default(),
        }
    }
}

/// A binding decision for one operation.
enum Decision {
    Existing(usize),
    Retrofit {
        device: usize,
        union: mfhls_chip::AccessorySet,
    },
    New(DeviceConfig),
}

impl Decision {
    fn device(&self, next_new: usize) -> usize {
        match self {
            Decision::Existing(d) | Decision::Retrofit { device: d, .. } => *d,
            Decision::New(_) => next_new,
        }
    }
}

/// Whether `op` may run on the (current) config of device `d`, honouring
/// the binding mode and the visibility mask.
fn device_compatible(state: &State<'_, '_>, op: OpId, d: usize) -> bool {
    let p = state.p;
    let inherited = !state.created.contains(&d);
    if inherited && !p.bindable.get(d).copied().unwrap_or(false) {
        return false;
    }
    let req = p.assay.op(op).requirements();
    let cfg = &state.devices[d];
    if p.component_oriented {
        cfg.satisfies(req)
    } else {
        let (kind, cap, acc) = req.signature();
        cfg.container() == kind && cfg.capacity() == cap && cfg.accessories() == acc
    }
}

/// The configuration a fresh device for `op` would get, or `None` for
/// unfabricable requirements (e.g. a large chamber).
fn fresh_config(p: &LayerProblem<'_>, op: OpId) -> Option<DeviceConfig> {
    let req = p.assay.op(op).requirements();
    if p.component_oriented {
        DeviceConfig::cheapest_for(req, p.costs)
    } else {
        let (kind, cap, acc) = req.signature();
        DeviceConfig::new(kind, cap, acc).ok()
    }
}

/// Devices counted against the budget `|D|`: devices created by this layer
/// plus bindable inherited ones. Masked-out inherited devices (the previous
/// iteration's D'_i, which this layer is re-deciding) do not count — their
/// slots are conceptually free for reconfiguration (§3.2).
fn active_device_count(state: &State<'_, '_>) -> usize {
    (0..state.devices.len())
        .filter(|&d| {
            state.created.contains(&d) || state.p.bindable.get(d).copied().unwrap_or(false)
        })
        .count()
}

/// Budget that must stay in reserve for operations not yet scheduled:
/// one slot per distinct fresh config among remaining determinate ops that
/// no current device can host, plus one slot per remaining indeterminate op
/// that cannot claim an untaken compatible device. Without this reserve the
/// greedy can spend the whole budget on parallelism and strand a later
/// operation kind.
fn forced_reserve(
    state: &State<'_, '_>,
    remaining_det: &[OpId],
    remaining_ind: &[OpId],
    taken: &BTreeSet<usize>,
) -> usize {
    let mut configs: BTreeSet<DeviceConfig> = BTreeSet::new();
    for &op in remaining_det {
        if !state.compat_any[op.index()] {
            if let Some(cfg) = state.ctx.fresh[op.index()] {
                configs.insert(cfg);
            }
        }
    }
    let mut virtually_taken = taken.clone();
    let mut ind_extra = 0;
    for &op in remaining_ind {
        let claim = (0..state.devices.len())
            .find(|&d| !virtually_taken.contains(&d) && device_compatible(state, op, d));
        match claim {
            Some(d) => {
                virtually_taken.insert(d);
            }
            None => ind_extra += 1,
        }
    }
    configs.len() + ind_extra
}

/// Enumerates binding candidates for `op`. `exclude` filters devices taken
/// by other indeterminate ops; `reserve` is the budget that must remain for
/// later forced creations (0 when this op itself has no compatible device).
fn candidates(
    state: &State<'_, '_>,
    op: OpId,
    exclude: &BTreeSet<usize>,
    reserve: usize,
) -> Vec<Decision> {
    let p = state.p;
    let req = p.assay.op(op).requirements();
    let mut out = Vec::new();
    for d in 0..state.devices.len() {
        if exclude.contains(&d) {
            continue;
        }
        if device_compatible(state, op, d) {
            out.push(Decision::Existing(d));
            continue;
        }
        let inherited = !state.created.contains(&d);
        let visible = !inherited || p.bindable.get(d).copied().unwrap_or(false);
        if p.component_oriented && !inherited && visible {
            // Retrofit: same container/capacity, add missing accessories.
            let cfg = &state.devices[d];
            let kind_ok = req.container.is_none_or(|k| k == cfg.container());
            let cap_ok = req.capacity.is_none_or(|c| c == cfg.capacity());
            if kind_ok && cap_ok && !req.accessories.is_subset(&cfg.accessories()) {
                out.push(Decision::Retrofit {
                    device: d,
                    union: cfg.accessories().union(req.accessories),
                });
            }
        }
    }
    // A creation is *forced* when nothing above matched; forced creations
    // ignore the reserve and quota (they are what the reserve saved room
    // for). Optional creations respect both.
    let forced = out.is_empty();
    let effective_reserve = if forced { 0 } else { reserve };
    if active_device_count(state) + effective_reserve < p.max_devices {
        if let Some(cfg) = state.ctx.fresh[op.index()] {
            let within_quota = state
                .quotas
                .get(&cfg)
                .is_none_or(|&q| state.created_of.get(&cfg).copied().unwrap_or(0) < q);
            if forced || within_quota {
                out.push(Decision::New(cfg));
            }
        }
    }
    out
}

/// Work-proportional creation quotas per fresh-device configuration.
///
/// Without quotas the greedy hands the whole budget to whichever stage of
/// the assay becomes ready first, starving later stages into full
/// serialisation. Each configuration needed by the layer gets at least one
/// slot; the remaining budget is split by total workload (largest
/// remainder), capped at the number of ops wanting that configuration.
fn provision_quotas(
    state: &State<'_, '_>,
    det_order: &[OpId],
    ind_order: &[OpId],
) -> BTreeMap<DeviceConfig, usize> {
    let p = state.p;
    let budget = p.max_devices.saturating_sub(active_device_count(state));
    let mut work: BTreeMap<DeviceConfig, u64> = BTreeMap::new();
    let mut ops_count: BTreeMap<DeviceConfig, usize> = BTreeMap::new();
    for &op in det_order.iter().chain(ind_order) {
        if let Some(cfg) = state.ctx.fresh[op.index()] {
            *work.entry(cfg).or_insert(0) += p.assay.op(op).duration().min_duration().max(1);
            *ops_count.entry(cfg).or_insert(0) += 1;
        }
    }
    if work.is_empty() || budget == 0 {
        return work.keys().map(|&c| (c, 0)).collect();
    }
    let total: u64 = work.values().sum();
    // Base: one slot each (as far as the budget goes, biggest work first).
    let mut quotas: BTreeMap<DeviceConfig, usize> = work.keys().map(|&c| (c, 0)).collect();
    let mut order: Vec<DeviceConfig> = work.keys().copied().collect();
    order.sort_by_key(|c| std::cmp::Reverse(work[c]));
    let mut left = budget;
    for &c in &order {
        if left == 0 {
            break;
        }
        quotas.insert(c, 1);
        left -= 1;
    }
    // Proportional shares of the remainder, capped by ops_count.
    if left > 0 {
        let mut shares: Vec<(DeviceConfig, u64, u64)> = order
            .iter()
            .map(|&c| {
                let exact = left as u64 * work[&c];
                (c, exact / total, exact % total)
            })
            .collect();
        let mut used: usize = 0;
        for &(c, whole, _) in &shares {
            let cap = ops_count[&c].saturating_sub(quotas[&c]);
            let add = (whole as usize).min(cap).min(left - used);
            *quotas.entry(c).or_insert(0) += add;
            used += add;
        }
        // Largest remainders take any leftover slots.
        shares.sort_by_key(|&(_, _, rem)| std::cmp::Reverse(rem));
        for &(c, _, _) in &shares {
            if used >= left {
                break;
            }
            if quotas[&c] < ops_count[&c] {
                *quotas.entry(c).or_insert(0) += 1;
                used += 1;
            }
        }
    }
    quotas
}

/// Greedy construction. `det_order` must schedule every in-layer parent
/// before its children (any topological order of the layer's determinate
/// ops works — the priority order, or the SDC-derived order of
/// [`crate::sdc_model`]).
pub(crate) fn construct(
    p: &LayerProblem<'_>,
    ctx: &Ctx,
    det_order: &[OpId],
    ind_order: &[OpId],
) -> Result<LayerSolution, CoreError> {
    let mut state = State::new(p, ctx);
    state.init_compat();
    state.quotas = provision_quotas(&state, det_order, ind_order);
    let no_exclusions = BTreeSet::new();
    for (pos, &op) in det_order.iter().enumerate() {
        let ready = state.ready_time(op);
        let dur = p.assay.op(op).duration().min_duration();
        let t_out = p.transport.of(op);
        let reserve = forced_reserve(&state, &det_order[pos + 1..], ind_order, &no_exclusions);
        let mut best: Option<(u64, u64, usize, Decision)> = None; // (cost, start, rank)
        for dec in candidates(&state, op, &no_exclusions, reserve) {
            let d = dec.device(state.devices.len());
            let avail = state.avail.get(d).copied().unwrap_or(0);
            let start = ready.max(avail);
            let paths = match &dec {
                Decision::New(_) => {
                    // Paths to a fresh device: count parents on other devices.
                    state.added_paths_to_new(op, d)
                }
                _ => state.added_path_count(op, d),
            };
            let cost = p.weights.time * (start + dur + t_out)
                + state.capex(&dec)
                + p.weights.paths * paths;
            let rank = match &dec {
                Decision::Existing(_) => 0,
                Decision::Retrofit { .. } => 1,
                Decision::New(_) => 2,
            };
            if best
                .as_ref()
                .is_none_or(|(c, _, r, _)| (cost, rank) < (*c, *r))
            {
                best = Some((cost, start, rank, dec));
            }
        }
        let Some((_, start, _, dec)) = best else {
            return Err(CoreError::DeviceBudgetExhausted {
                op: op.index(),
                max_devices: p.max_devices,
            });
        };
        let d = apply_decision(&mut state, dec);
        state.commit(op, d, start);
    }

    // Indeterminate ops: distinct devices, aligned starts.
    let mut taken: BTreeSet<usize> = BTreeSet::new();
    let mut placed: Vec<(OpId, usize, u64)> = Vec::new();
    for (pos, &op) in ind_order.iter().enumerate() {
        let ready = state.ready_time(op);
        let reserve = forced_reserve(&state, &[], &ind_order[pos + 1..], &taken);
        let mut best: Option<(u64, u64, usize, Decision)> = None;
        for dec in candidates(&state, op, &taken, reserve) {
            let d = dec.device(state.devices.len());
            let avail = state.avail.get(d).copied().unwrap_or(0);
            let start = ready.max(avail);
            let paths = match &dec {
                Decision::New(_) => state.added_paths_to_new(op, d),
                _ => state.added_path_count(op, d),
            };
            let cost = p.weights.time * start + state.capex(&dec) + p.weights.paths * paths;
            let rank = match &dec {
                Decision::Existing(_) => 0,
                Decision::Retrofit { .. } => 1,
                Decision::New(_) => 2,
            };
            if best
                .as_ref()
                .is_none_or(|(c, _, r, _)| (cost, rank) < (*c, *r))
            {
                best = Some((cost, start, rank, dec));
            }
        }
        let Some((_, start, _, dec)) = best else {
            return Err(CoreError::DeviceBudgetExhausted {
                op: op.index(),
                max_devices: p.max_devices,
            });
        };
        let d = apply_decision(&mut state, dec);
        taken.insert(d);
        placed.push((op, d, start));
    }
    align_and_commit_indeterminate(&mut state, &placed);
    Ok(state.finish())
}

impl State<'_, '_> {
    /// Path count to a not-yet-created device index (all parent devices
    /// differ by definition).
    fn added_paths_to_new(&self, op: OpId, new_d: usize) -> u64 {
        let mut keys: Vec<(usize, usize)> = Vec::new();
        for q in &self.ctx.parents[op.index()] {
            if let Some(s) = self.slots.get(q) {
                let k = path_key(s.device, new_d);
                if !keys.contains(&k) {
                    keys.push(k);
                }
            }
        }
        for &(child, pd) in &self.p.cross_inputs {
            if child == op {
                let k = path_key(pd, new_d);
                if !keys.contains(&k) {
                    keys.push(k);
                }
            }
        }
        keys.len() as u64
    }
}

fn apply_decision(state: &mut State<'_, '_>, dec: Decision) -> usize {
    match dec {
        Decision::Existing(d) => d,
        Decision::Retrofit { device, union } => {
            let cfg = &mut state.devices[device];
            let mut updated = *cfg;
            updated.add_accessories(union);
            *cfg = updated;
            state.refresh_compat_for(device);
            device
        }
        Decision::New(cfg) => {
            state.devices.push(cfg);
            state.avail.push(0);
            let d = state.devices.len() - 1;
            state.created.insert(d);
            *state.created_of.entry(cfg).or_insert(0) += 1;
            state.refresh_compat_for(d);
            d
        }
    }
}

/// Aligns indeterminate starts at `max(latest earliest-start, latest
/// determinate start)` and commits them (this satisfies eq. 14: every start
/// in the layer is `<=` every indeterminate start).
fn align_and_commit_indeterminate(state: &mut State<'_, '_>, placed: &[(OpId, usize, u64)]) {
    if placed.is_empty() {
        return;
    }
    let max_det_start = state.slots.values().map(|s| s.start).max().unwrap_or(0);
    let t_star = placed
        .iter()
        .map(|&(_, _, e)| e)
        .max()
        .unwrap_or(0)
        .max(max_det_start);
    for &(op, d, _) in placed {
        state.commit(op, d, t_star);
    }
}

/// Re-schedules with a *pinned* binding (op -> device index in
/// `reference.devices`), preserving the construction order. Used by the
/// improvement passes. Returns `None` if the binding is incompatible or
/// violates indeterminate exclusivity.
fn schedule_with_binding(
    p: &LayerProblem<'_>,
    ctx: &Ctx,
    det_order: &[OpId],
    ind_order: &[OpId],
    binding: &BTreeMap<OpId, usize>,
    reference: &LayerSolution,
) -> Option<LayerSolution> {
    let mut state = State::new(p, ctx);
    // Recreate the reference's created devices with their *base* (cheapest)
    // configs; retrofits re-derive from the ops actually bound there.
    let base = p.devices.len();
    for cfg in &reference.devices[base.min(reference.devices.len())..] {
        // Start each created device from the container only; accessories are
        // re-unioned from bound ops below.
        let bare = DeviceConfig::new(cfg.container(), cfg.capacity(), Default::default()).ok()?;
        state.devices.push(bare);
        state.avail.push(0);
        let d = state.devices.len() - 1;
        state.created.insert(d);
    }
    // Re-derive accessory unions for created devices.
    for (&op, &d) in binding {
        if d >= state.devices.len() {
            return None;
        }
        if state.created.contains(&d) {
            let req = p.assay.op(op).requirements();
            if req
                .container
                .is_some_and(|k| k != state.devices[d].container())
                || req
                    .capacity
                    .is_some_and(|c| c != state.devices[d].capacity())
            {
                return None;
            }
            let mut cfg = state.devices[d];
            cfg.add_accessories(req.accessories);
            state.devices[d] = cfg;
        }
    }
    // Compatibility check for every binding.
    for (&op, &d) in binding {
        let req = p.assay.op(op).requirements();
        let inherited = !state.created.contains(&d);
        if inherited && !p.bindable.get(d).copied().unwrap_or(false) {
            return None;
        }
        let ok = if p.component_oriented {
            state.devices[d].satisfies(req)
        } else {
            let (kind, cap, acc) = req.signature();
            state.devices[d].container() == kind
                && state.devices[d].capacity() == cap
                && state.devices[d].accessories() == acc
        };
        if !ok {
            return None;
        }
    }
    // Indeterminate exclusivity.
    let ind_devs: Vec<usize> = ind_order
        .iter()
        .map(|o| binding.get(o).copied())
        .collect::<Option<_>>()?;
    let distinct: BTreeSet<usize> = ind_devs.iter().copied().collect();
    if distinct.len() != ind_devs.len() {
        return None;
    }

    for &op in det_order {
        let &d = binding.get(&op)?;
        let start = state.ready_time(op).max(state.avail[d]);
        state.commit(op, d, start);
    }
    let mut placed: Vec<(OpId, usize, u64)> = Vec::with_capacity(ind_order.len());
    for (&op, &d) in ind_order.iter().zip(&ind_devs) {
        let e = state.ready_time(op).max(state.avail[d]);
        placed.push((op, d, e));
    }
    align_and_commit_indeterminate(&mut state, &placed);
    Some(state.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        Assay, Duration, HybridSchedule, LayerSchedule, Operation, TransportConfig, TransportTimes,
        Weights,
    };
    use mfhls_chip::{Accessory, Capacity, ContainerKind, CostModel};

    fn solve_single_layer(assay: &Assay, max_devices: usize) -> LayerSolution {
        let costs = CostModel::default();
        let transport = TransportTimes::initial(assay, &TransportConfig::default());
        let p = LayerProblem {
            assay,
            ops: assay.op_ids().collect(),
            devices: vec![],
            bindable: vec![],
            max_devices,
            transport: &transport,
            weights: Weights::default(),
            costs: &costs,
            existing_paths: BTreeSet::new(),
            cross_inputs: vec![],
            component_oriented: true,
        };
        HeuristicLayerSolver::default().solve(&p).expect("solvable")
    }

    fn as_schedule(sol: &LayerSolution) -> HybridSchedule {
        HybridSchedule {
            layers: vec![LayerSchedule::new(sol.slots.clone())],
            devices: sol.devices.clone(),
            paths: sol.new_paths.clone(),
        }
    }

    #[test]
    fn single_op() {
        let mut a = Assay::new("t");
        a.add_op(Operation::new("x").with_duration(Duration::fixed(5)));
        let sol = solve_single_layer(&a, 4);
        assert_eq!(sol.slots.len(), 1);
        assert_eq!(sol.devices.len(), 1);
        assert_eq!(sol.makespan(), 5);
        as_schedule(&sol).validate(&a).unwrap();
    }

    #[test]
    fn independent_ops_parallelise_with_budget() {
        let mut a = Assay::new("t");
        for k in 0..4 {
            a.add_op(Operation::new(&format!("x{k}")).with_duration(Duration::fixed(10)));
        }
        let sol = solve_single_layer(&a, 8);
        assert_eq!(sol.makespan(), 10, "all four should run in parallel");
        as_schedule(&sol).validate(&a).unwrap();
    }

    #[test]
    fn budget_forces_serialisation() {
        let mut a = Assay::new("t");
        for k in 0..3 {
            a.add_op(Operation::new(&format!("x{k}")).with_duration(Duration::fixed(10)));
        }
        let sol = solve_single_layer(&a, 1);
        assert_eq!(sol.devices.len(), 1);
        assert_eq!(sol.makespan(), 30);
        as_schedule(&sol).validate(&a).unwrap();
    }

    #[test]
    fn chain_respects_transport() {
        let mut a = Assay::new("t");
        let x = a.add_op(Operation::new("x").with_duration(Duration::fixed(5)));
        let y = a.add_op(Operation::new("y").with_duration(Duration::fixed(5)));
        a.add_dependency(x, y).unwrap();
        let sol = solve_single_layer(&a, 4);
        let sx = sol.slots.iter().find(|s| s.op == x).unwrap();
        let sy = sol.slots.iter().find(|s| s.op == y).unwrap();
        if sx.device == sy.device {
            assert!(sy.start >= sx.start + 5);
        } else {
            assert!(sy.start >= sx.start + 5 + 3, "initial transport is 3");
        }
        as_schedule(&sol).validate(&a).unwrap();
    }

    #[test]
    fn reuses_device_for_sequential_compatible_ops() {
        // Two sequential ops with identical needs should share one device
        // (zero transport on the same device beats a second chamber).
        let mut a = Assay::new("t");
        let x = a.add_op(Operation::new("x").with_duration(Duration::fixed(5)));
        let y = a.add_op(Operation::new("y").with_duration(Duration::fixed(5)));
        a.add_dependency(x, y).unwrap();
        let sol = solve_single_layer(&a, 10);
        assert_eq!(sol.devices.len(), 1, "no reason for a second device");
    }

    #[test]
    fn indeterminate_ops_get_distinct_devices_and_aligned_starts() {
        let mut a = Assay::new("t");
        let i1 = a.add_op(Operation::new("i1").with_duration(Duration::at_least(4)));
        let i2 = a.add_op(Operation::new("i2").with_duration(Duration::at_least(6)));
        let d = a.add_op(Operation::new("prep").with_duration(Duration::fixed(3)));
        a.add_dependency(d, i1).unwrap();
        let sol = solve_single_layer(&a, 5);
        let s1 = sol.slots.iter().find(|s| s.op == i1).unwrap();
        let s2 = sol.slots.iter().find(|s| s.op == i2).unwrap();
        assert_ne!(s1.device, s2.device);
        assert_eq!(s1.start, s2.start);
        as_schedule(&sol).validate(&a).unwrap();
    }

    #[test]
    fn accessory_superset_binding() {
        // op1 needs ring+pump+sieve; op2 needs just a sieve on any
        // container: op2 should reuse op1's device (component-oriented).
        let mut a = Assay::new("t");
        let o1 = a.add_op(
            Operation::new("o1")
                .container(ContainerKind::Ring)
                .capacity(Capacity::Medium)
                .accessory(Accessory::SieveValve)
                .accessory(Accessory::Pump)
                .with_duration(Duration::fixed(5)),
        );
        let o2 = a.add_op(
            Operation::new("o2")
                .accessory(Accessory::SieveValve)
                .with_duration(Duration::fixed(5)),
        );
        a.add_dependency(o1, o2).unwrap();
        let sol = solve_single_layer(&a, 10);
        assert_eq!(sol.devices.len(), 1);
        as_schedule(&sol).validate(&a).unwrap();
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut a = Assay::new("t");
        a.add_op(Operation::new("x").with_duration(Duration::fixed(1)));
        let costs = CostModel::default();
        let transport = TransportTimes::initial(&a, &TransportConfig::default());
        let p = LayerProblem {
            assay: &a,
            ops: vec![OpId(0)],
            devices: vec![],
            bindable: vec![],
            max_devices: 0,
            transport: &transport,
            weights: Weights::default(),
            costs: &costs,
            existing_paths: BTreeSet::new(),
            cross_inputs: vec![],
            component_oriented: true,
        };
        assert!(matches!(
            HeuristicLayerSolver::default().solve(&p),
            Err(CoreError::DeviceBudgetExhausted { .. })
        ));
    }

    #[test]
    fn conventional_mode_partitions_by_signature() {
        // Two ops with different signatures cannot share a device in
        // conventional mode even though a superset device would fit both.
        let mut a = Assay::new("t");
        let o1 = a.add_op(
            Operation::new("o1")
                .accessory(Accessory::SieveValve)
                .accessory(Accessory::Pump)
                .with_duration(Duration::fixed(5)),
        );
        let o2 = a.add_op(
            Operation::new("o2")
                .accessory(Accessory::SieveValve)
                .with_duration(Duration::fixed(5)),
        );
        a.add_dependency(o1, o2).unwrap();
        let costs = CostModel::default();
        let transport = TransportTimes::initial(&a, &TransportConfig::default());
        let p = LayerProblem {
            assay: &a,
            ops: vec![o1, o2],
            devices: vec![],
            bindable: vec![],
            max_devices: 10,
            transport: &transport,
            weights: Weights::default(),
            costs: &costs,
            existing_paths: BTreeSet::new(),
            cross_inputs: vec![],
            component_oriented: false,
        };
        let sol = HeuristicLayerSolver::default().solve(&p).unwrap();
        assert_eq!(sol.devices.len(), 2, "signatures differ -> two devices");
    }

    #[test]
    fn cross_inputs_count_paths() {
        let mut a = Assay::new("t");
        a.add_op(Operation::new("x").with_duration(Duration::fixed(1)));
        let costs = CostModel::default();
        let transport = TransportTimes::initial(&a, &TransportConfig::default());
        let parent_dev_cfg =
            DeviceConfig::new(ContainerKind::Chamber, Capacity::Small, Default::default()).unwrap();
        let p = LayerProblem {
            assay: &a,
            ops: vec![OpId(0)],
            devices: vec![parent_dev_cfg],
            bindable: vec![true],
            max_devices: 10,
            transport: &transport,
            weights: Weights::default(),
            costs: &costs,
            existing_paths: BTreeSet::new(),
            cross_inputs: vec![(OpId(0), 0)],
            component_oriented: true,
        };
        let sol = HeuristicLayerSolver::default().solve(&p).unwrap();
        // Cheapest: bind to the parent's device -> no path at all.
        assert_eq!(sol.new_paths.len(), 0);
        assert_eq!(sol.slots[0].device, 0);
    }

    #[test]
    fn quota_prevents_stage_starvation() {
        // Two stages with very different readiness: 8 short "early" ops and
        // 8 long "late" ops each fed by one early op. A small budget must
        // still leave the long stage several devices, or it serialises.
        let mut a = Assay::new("t");
        for k in 0..8 {
            let early = a.add_op(
                Operation::new(&format!("early{k}"))
                    .capacity(Capacity::Tiny)
                    .with_duration(Duration::fixed(2)),
            );
            let late = a.add_op(
                Operation::new(&format!("late{k}"))
                    .capacity(Capacity::Small)
                    .accessory(Accessory::HeatingPad)
                    .with_duration(Duration::fixed(40)),
            );
            a.add_dependency(early, late).unwrap();
        }
        let sol = solve_single_layer(&a, 8);
        // The heavy stage must get the lion's share of the 8 devices:
        // makespan far below full serialisation (8 * 40 = 320).
        assert!(sol.makespan() <= 120, "makespan {}", sol.makespan());
        as_schedule(&sol).validate(&a).unwrap();
    }

    #[test]
    fn reserve_prevents_stranded_op_kinds() {
        // Many parallel tiny ops would gladly eat the whole budget; the one
        // late op with a unique requirement must still get a device.
        let mut a = Assay::new("t");
        let gate = a.add_op(
            Operation::new("gate")
                .capacity(Capacity::Tiny)
                .with_duration(Duration::fixed(1)),
        );
        for k in 0..12 {
            let op = a.add_op(
                Operation::new(&format!("bulk{k}"))
                    .capacity(Capacity::Tiny)
                    .with_duration(Duration::fixed(10)),
            );
            a.add_dependency(gate, op).unwrap();
        }
        let special = a.add_op(
            Operation::new("special")
                .container(ContainerKind::Ring)
                .capacity(Capacity::Medium)
                .accessory(Accessory::Pump)
                .with_duration(Duration::fixed(5)),
        );
        a.add_dependency(gate, special).unwrap();
        // Budget 4: bulk could want 4 chambers, but one slot must stay
        // reserved for the ring.
        let sol = solve_single_layer(&a, 4);
        as_schedule(&sol).validate(&a).unwrap();
        assert!(sol
            .devices
            .iter()
            .any(|d| d.container() == ContainerKind::Ring));
    }

    #[test]
    fn conventional_large_capacity_defaults_to_ring() {
        // An op demanding Large capacity without a container: the
        // conventional signature cannot be a chamber (eqs. 3-4).
        let mut a = Assay::new("t");
        a.add_op(
            Operation::new("big")
                .capacity(Capacity::Large)
                .with_duration(Duration::fixed(5)),
        );
        let costs = CostModel::default();
        let transport = TransportTimes::initial(&a, &TransportConfig::default());
        let p = LayerProblem {
            assay: &a,
            ops: vec![OpId(0)],
            devices: vec![],
            bindable: vec![],
            max_devices: 3,
            transport: &transport,
            weights: Weights::default(),
            costs: &costs,
            existing_paths: BTreeSet::new(),
            cross_inputs: vec![],
            component_oriented: false,
        };
        let sol = HeuristicLayerSolver::default().solve(&p).unwrap();
        assert_eq!(sol.devices[0].container(), ContainerKind::Ring);
        assert_eq!(sol.devices[0].capacity(), Capacity::Large);
    }

    #[test]
    fn unfabricable_requirement_reports_budget_error() {
        // Chamber + Large cannot be built; with no compatible device the
        // solver must fail cleanly rather than panic.
        let mut a = Assay::new("t");
        a.add_op(
            Operation::new("impossible")
                .container(ContainerKind::Chamber)
                .capacity(Capacity::Large)
                .with_duration(Duration::fixed(5)),
        );
        let costs = CostModel::default();
        let transport = TransportTimes::initial(&a, &TransportConfig::default());
        let p = LayerProblem {
            assay: &a,
            ops: vec![OpId(0)],
            devices: vec![],
            bindable: vec![],
            max_devices: 5,
            transport: &transport,
            weights: Weights::default(),
            costs: &costs,
            existing_paths: BTreeSet::new(),
            cross_inputs: vec![],
            component_oriented: true,
        };
        assert!(matches!(
            HeuristicLayerSolver::default().solve(&p),
            Err(CoreError::DeviceBudgetExhausted { .. })
        ));
    }

    #[test]
    fn retrofit_unifies_accessories_on_new_devices() {
        // Sequential ops with disjoint accessory needs but the same
        // container class: one retrofitted device beats two devices + a
        // path + transport.
        let mut a = Assay::new("t");
        let o1 = a.add_op(
            Operation::new("heat")
                .capacity(Capacity::Small)
                .accessory(Accessory::HeatingPad)
                .with_duration(Duration::fixed(5)),
        );
        let o2 = a.add_op(
            Operation::new("image")
                .capacity(Capacity::Small)
                .accessory(Accessory::OpticalSystem)
                .with_duration(Duration::fixed(5)),
        );
        a.add_dependency(o1, o2).unwrap();
        let sol = solve_single_layer(&a, 6);
        assert_eq!(sol.devices.len(), 1);
        let acc = sol.devices[0].accessories();
        assert!(acc.contains(Accessory::HeatingPad));
        assert!(acc.contains(Accessory::OpticalSystem));
        as_schedule(&sol).validate(&a).unwrap();
    }

    #[test]
    fn improvement_never_worsens() {
        let mut a = Assay::new("t");
        let mut prev = None;
        for k in 0..6 {
            let o = a.add_op(Operation::new(&format!("o{k}")).with_duration(Duration::fixed(3)));
            if let Some(p) = prev {
                a.add_dependency(p, o).unwrap();
            }
            if k % 2 == 0 {
                prev = Some(o);
            }
        }
        let costs = CostModel::default();
        let transport = TransportTimes::initial(&a, &TransportConfig::default());
        let mk = |passes| {
            let p = LayerProblem {
                assay: &a,
                ops: a.op_ids().collect(),
                devices: vec![],
                bindable: vec![],
                max_devices: 6,
                transport: &transport,
                weights: Weights::default(),
                costs: &costs,
                existing_paths: BTreeSet::new(),
                cross_inputs: vec![],
                component_oriented: true,
            };
            HeuristicLayerSolver {
                improvement_passes: passes,
            }
            .solve(&p)
            .unwrap()
        };
        let base = mk(0);
        let improved = mk(3);
        assert!(improved.objective <= base.objective);
    }
}
