//! Channel routing over the placement grid.
//!
//! The [`layout`](crate::layout) estimator gives device positions and
//! Manhattan length estimates; this module goes one step further and
//! routes each flow path as an actual grid polyline with a Dijkstra
//! search. Free cells cost 1; cells occupied by a device (other than the
//! two endpoints) cost extra — continuous-flow chips are multilayer PDMS,
//! so a channel *may* pass over a device, it is just undesirable.
//!
//! Busier paths are routed first and therefore get the shortest,
//! least-obstructed routes, consistent with the transport-refinement
//! assumption of §4.1. Routed lengths are by construction `>=` the
//! Manhattan estimates.

use crate::layout::{Cell, Layout};
use crate::{Netlist, PathKey};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Cost of crossing a device-occupied cell (vs 1 for a free cell).
const DEVICE_CELL_COST: u64 = 4;
/// Cost added per cell already used by previously routed channels
/// (congestion avoidance).
const CONGESTION_COST: u64 = 1;

/// A routed chip: placement plus one polyline per flow path.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedLayout {
    routes: BTreeMap<PathKey, Vec<Cell>>,
}

impl RoutedLayout {
    /// The polyline routed for `key` (endpoints included), if the path
    /// exists.
    pub fn route(&self, key: PathKey) -> Option<&[Cell]> {
        self.routes.get(&key).map(Vec::as_slice)
    }

    /// Routed channel length (polyline cells minus one), if the path
    /// exists.
    pub fn length(&self, key: PathKey) -> Option<u64> {
        self.routes.get(&key).map(|r| r.len() as u64 - 1)
    }

    /// Iterates `(path, polyline)` pairs.
    pub fn routes(&self) -> impl Iterator<Item = (PathKey, &[Cell])> {
        self.routes.iter().map(|(&k, v)| (k, v.as_slice()))
    }

    /// Total routed channel length.
    pub fn total_length(&self) -> u64 {
        self.routes.values().map(|r| r.len() as u64 - 1).sum()
    }

    /// Renders placement + routed channels as a standalone SVG document.
    pub fn to_svg(&self, net: &Netlist, layout: &Layout) -> String {
        const SCALE: i64 = 50;
        let cells: Vec<Cell> = self
            .routes
            .values()
            .flatten()
            .copied()
            .chain(net.devices().iter().filter_map(|d| layout.cell(d.id)))
            .collect();
        let min_x = cells.iter().map(|c| c.x).min().unwrap_or(0);
        let min_y = cells.iter().map(|c| c.y).min().unwrap_or(0);
        let max_x = cells.iter().map(|c| c.x).max().unwrap_or(0);
        let max_y = cells.iter().map(|c| c.y).max().unwrap_or(0);
        let w = (max_x - min_x + 2) * SCALE;
        let h = (max_y - min_y + 2) * SCALE;
        let px = |c: Cell| ((c.x - min_x + 1) * SCALE, (c.y - min_y + 1) * SCALE);
        let mut s = format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\" font-family=\"monospace\" font-size=\"11\">\n"
        );
        for (key, route) in self.routes() {
            let points: Vec<String> = route
                .iter()
                .map(|&c| {
                    let (x, y) = px(c);
                    format!("{x},{y}")
                })
                .collect();
            let width = 1 + net.path_usage(key.0, key.1).min(5);
            s.push_str(&format!(
                "  <polyline points=\"{}\" fill=\"none\" stroke=\"#4a7\" stroke-width=\"{width}\"/>\n",
                points.join(" ")
            ));
        }
        for d in net.devices() {
            if let Some(c) = layout.cell(d.id) {
                let (x, y) = px(c);
                s.push_str(&format!(
                    "  <circle cx=\"{x}\" cy=\"{y}\" r=\"14\" fill=\"#eee\" stroke=\"#333\"/>\n  <text x=\"{x}\" y=\"{}\" text-anchor=\"middle\">{}</text>\n",
                    y + 4,
                    d.id
                ));
            }
        }
        s.push_str("</svg>\n");
        s
    }
}

/// Routes every path of `net` over `layout`'s grid, busiest first.
///
/// # Panics
///
/// Panics if a path endpoint has no placement in `layout` (always present
/// when `layout` was produced by [`crate::layout::place`] on the same
/// netlist).
///
/// # Example
///
/// ```
/// use mfhls_chip::{AccessorySet, Capacity, ContainerKind, DeviceConfig, Netlist, PathKey};
/// use mfhls_chip::{layout, routing};
///
/// let mut net = Netlist::new();
/// let cfg = DeviceConfig::new(ContainerKind::Chamber, Capacity::Small, AccessorySet::empty())?;
/// let a = net.add_device(cfg);
/// let b = net.add_device(cfg);
/// net.record_transfer(a, b)?;
/// let placed = layout::place(&net);
/// let routed = routing::route(&net, &placed);
/// assert_eq!(routed.length(PathKey::new(a, b)), Some(1));
/// # Ok::<(), mfhls_chip::ChipError>(())
/// ```
pub fn route(net: &Netlist, layout: &Layout) -> RoutedLayout {
    let occupied: BTreeSet<Cell> = net
        .devices()
        .iter()
        .filter_map(|d| layout.cell(d.id))
        .collect();
    let mut congestion: BTreeMap<Cell, u64> = BTreeMap::new();
    let mut routes = BTreeMap::new();

    for (key, _) in net.paths_by_usage() {
        let a = layout.cell(key.0).expect("endpoint placed");
        let b = layout.cell(key.1).expect("endpoint placed");
        let path = dijkstra(a, b, &occupied, &congestion);
        for &c in &path {
            *congestion.entry(c).or_insert(0) += CONGESTION_COST;
        }
        routes.insert(key, path);
    }
    RoutedLayout { routes }
}

fn dijkstra(
    from: Cell,
    to: Cell,
    occupied: &BTreeSet<Cell>,
    congestion: &BTreeMap<Cell, u64>,
) -> Vec<Cell> {
    use std::cmp::Reverse;
    // Bound the search region a little beyond the bounding box.
    let (lo_x, hi_x) = (from.x.min(to.x) - 3, from.x.max(to.x) + 3);
    let (lo_y, hi_y) = (from.y.min(to.y) - 3, from.y.max(to.y) + 3);

    let mut dist: BTreeMap<Cell, u64> = BTreeMap::new();
    let mut prev: BTreeMap<Cell, Cell> = BTreeMap::new();
    let mut heap: BinaryHeap<(Reverse<u64>, Cell)> = BinaryHeap::new();
    dist.insert(from, 0);
    heap.push((Reverse(0), from));

    while let Some((Reverse(d), cell)) = heap.pop() {
        if cell == to {
            break;
        }
        if dist.get(&cell).is_some_and(|&best| d > best) {
            continue;
        }
        for (dx, dy) in [(1, 0), (-1, 0), (0, 1), (0, -1)] {
            let next = Cell {
                x: cell.x + dx,
                y: cell.y + dy,
            };
            if next.x < lo_x || next.x > hi_x || next.y < lo_y || next.y > hi_y {
                continue;
            }
            let mut step = 1;
            if next != to && occupied.contains(&next) {
                step += DEVICE_CELL_COST;
            }
            step += congestion.get(&next).copied().unwrap_or(0);
            let nd = d + step;
            if dist.get(&next).is_none_or(|&best| nd < best) {
                dist.insert(next, nd);
                prev.insert(next, cell);
                heap.push((Reverse(nd), next));
            }
        }
    }

    // Reconstruct (the bounded box always contains a route).
    let mut path = vec![to];
    let mut cur = to;
    while cur != from {
        cur = *prev
            .get(&cur)
            .expect("target reachable inside bounding box");
        path.push(cur);
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::place;
    use crate::{AccessorySet, Capacity, ContainerKind, DeviceConfig};

    fn chamber() -> DeviceConfig {
        DeviceConfig::new(
            ContainerKind::Chamber,
            Capacity::Small,
            AccessorySet::empty(),
        )
        .unwrap()
    }

    fn star_netlist(n_leaves: usize, hot_usage: usize) -> Netlist {
        let mut net = Netlist::new();
        let hub = net.add_device(chamber());
        for k in 0..n_leaves {
            let leaf = net.add_device(chamber());
            let usage = if k == 0 { hot_usage } else { 1 };
            for _ in 0..usage {
                net.record_transfer(hub, leaf).unwrap();
            }
        }
        net
    }

    #[test]
    fn adjacent_devices_route_directly() {
        let mut net = Netlist::new();
        let a = net.add_device(chamber());
        let b = net.add_device(chamber());
        net.record_transfer(a, b).unwrap();
        let layout = place(&net);
        let routed = route(&net, &layout);
        let key = PathKey::new(a, b);
        assert_eq!(routed.length(key), Some(1));
        let r = routed.route(key).unwrap();
        assert_eq!(r.first().copied(), layout.cell(key.0));
        assert_eq!(r.last().copied(), layout.cell(key.1));
    }

    #[test]
    fn routes_are_connected_polylines() {
        let net = star_netlist(8, 5);
        let layout = place(&net);
        let routed = route(&net, &layout);
        for (key, r) in routed.routes() {
            assert!(r.len() >= 2, "path {key} degenerate");
            for w in r.windows(2) {
                assert_eq!(w[0].distance(w[1]), 1, "route {key} not connected");
            }
        }
    }

    #[test]
    fn routed_length_at_least_manhattan() {
        let net = star_netlist(10, 3);
        let layout = place(&net);
        let routed = route(&net, &layout);
        for (key, _) in net.paths() {
            let manhattan = layout.path_length(key).unwrap();
            let routed_len = routed.length(key).unwrap();
            assert!(routed_len >= manhattan, "path {key}");
        }
    }

    #[test]
    fn busiest_path_routed_shortest() {
        let net = star_netlist(8, 10);
        let layout = place(&net);
        let routed = route(&net, &layout);
        let ranked = net.paths_by_usage();
        let hot = routed.length(ranked[0].0).unwrap();
        let max_len = ranked
            .iter()
            .map(|&(k, _)| routed.length(k).unwrap())
            .max()
            .unwrap();
        assert!(hot <= max_len);
        assert_eq!(hot, 1, "hot path should be adjacent + direct");
    }

    #[test]
    fn total_length_sums() {
        let net = star_netlist(3, 1);
        let layout = place(&net);
        let routed = route(&net, &layout);
        let sum: u64 = net.paths().map(|(k, _)| routed.length(k).unwrap()).sum();
        assert_eq!(routed.total_length(), sum);
    }

    #[test]
    fn svg_contains_polylines_and_devices() {
        let net = star_netlist(4, 2);
        let layout = place(&net);
        let routed = route(&net, &layout);
        let svg = routed.to_svg(&net, &layout);
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<polyline").count(), net.path_count());
        assert_eq!(svg.matches("<circle").count(), net.devices().len());
    }

    #[test]
    fn empty_netlist_routes_nothing() {
        let net = Netlist::new();
        let layout = place(&net);
        let routed = route(&net, &layout);
        assert_eq!(routed.total_length(), 0);
        assert!(routed.to_svg(&net, &layout).starts_with("<svg"));
    }
}
