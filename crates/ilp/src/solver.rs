//! Depth-first branch-and-bound over the simplex LP relaxation.

use crate::model::{Model, VarId};
use crate::presolve;
use crate::simplex::{solve_lp_with_bounds, LpProblem, LpResult, LpRow};
use crate::IlpError;
use std::time::{Duration, Instant};

/// Configuration of the MILP search.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Optional wall-clock limit.
    pub time_limit: Option<Duration>,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Optional warm-start assignment. If it is feasible for the model it
    /// becomes the initial incumbent, which lets the search prune early and
    /// guarantees a `Feasible` answer even when limits are hit.
    pub incumbent: Option<Vec<f64>>,
    /// Run activity-based presolve before the search (default: true).
    pub presolve: bool,
    /// Prune any node whose LP bound reaches this objective value, even
    /// before an incumbent exists. Lets a caller inject the objective of an
    /// externally-known solution (e.g. a heuristic) without encoding the
    /// full assignment.
    pub cutoff: Option<f64>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_nodes: 200_000,
            time_limit: None,
            int_tol: 1e-6,
            incumbent: None,
            presolve: true,
            cutoff: None,
        }
    }
}

/// How the search concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// The returned solution is proven optimal.
    Optimal,
    /// A feasible solution was found, but a node or time limit stopped the
    /// search before optimality was proven.
    Feasible,
}

/// An integer-feasible solution returned by [`solve`].
#[derive(Debug, Clone)]
pub struct MilpSolution {
    values: Vec<f64>,
    /// Objective value of the solution.
    pub objective: f64,
    /// Whether optimality was proven.
    pub status: SolveStatus,
    /// Number of branch-and-bound nodes explored.
    pub nodes: usize,
}

impl MilpSolution {
    /// Value assigned to `var`. Integer variables are exactly integral.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved model.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// The dense assignment, indexed by [`VarId::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Convenience: `true` iff the binary/integer `var` rounds to 1.
    pub fn is_one(&self, var: VarId) -> bool {
        self.value(var).round() == 1.0
    }
}

/// Solves `model` to integer feasibility/optimality.
///
/// # Errors
///
/// * [`IlpError::Infeasible`] — the search space was exhausted with no
///   integer-feasible point.
/// * [`IlpError::LimitWithoutSolution`] — a limit was hit before any
///   integer-feasible point was found (supply an incumbent to avoid this).
/// * [`IlpError::UnboundedVariable`] — some variable lacks finite bounds.
///
/// # Example
///
/// ```
/// use mfhls_ilp::{Model, Sense, SolverConfig, solve};
///
/// // Knapsack: max 3a + 4b + 5c, weight 2a + 3b + 4c <= 5.
/// let mut m = Model::minimize();
/// let items: Vec<_> = ["a", "b", "c"].iter().map(|n| m.binary(n)).collect();
/// m.add_con(2.0 * items[0] + 3.0 * items[1] + 4.0 * items[2], Sense::Le, 5.0);
/// m.set_objective(-(3.0 * items[0] + 4.0 * items[1] + 5.0 * items[2]));
/// let sol = solve(&m, &SolverConfig::default())?;
/// assert_eq!(sol.objective, -7.0); // picks a and b (weight 5, value 7)
/// # Ok::<(), mfhls_ilp::IlpError>(())
/// ```
pub fn solve(model: &Model, config: &SolverConfig) -> Result<MilpSolution, IlpError> {
    BranchAndBound::new(model, config)?.run()
}

/// The branch-and-bound engine behind [`solve`], exposed for callers that
/// want to inspect node counts or reuse a configured instance.
pub struct BranchAndBound<'a> {
    model: &'a Model,
    config: &'a SolverConfig,
    base: LpProblem,
    int_vars: Vec<usize>,
    /// Per-variable flag: true for 0/1 variables (branched first).
    is_binary: Vec<bool>,
    lb0: Vec<f64>,
    ub0: Vec<f64>,
}

impl<'a> BranchAndBound<'a> {
    /// Prepares the search (validates bounds, applies presolve).
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::Infeasible`] if presolve proves infeasibility and
    /// [`IlpError::UnboundedVariable`] for non-finite bounds.
    pub fn new(model: &'a Model, config: &'a SolverConfig) -> Result<Self, IlpError> {
        for (j, v) in model.vars().iter().enumerate() {
            if !v.lb.is_finite() || !v.ub.is_finite() {
                return Err(IlpError::UnboundedVariable { var: j });
            }
        }
        let (lb0, ub0) = if config.presolve {
            match presolve::tighten_bounds(model, 10) {
                presolve::PresolveOutcome::Feasible { lb, ub } => (lb, ub),
                presolve::PresolveOutcome::Infeasible => return Err(IlpError::Infeasible),
            }
        } else {
            (
                model.vars().iter().map(|v| v.lb).collect(),
                model.vars().iter().map(|v| v.ub).collect(),
            )
        };
        let n = model.num_vars();
        let mut objective = vec![0.0; n];
        for (v, c) in model.objective().terms() {
            objective[v.index()] = c;
        }
        let rows = model
            .cons()
            .iter()
            .map(|c| LpRow {
                coeffs: c.expr.terms().map(|(v, co)| (v.index(), co)).collect(),
                sense: c.sense,
                rhs: c.rhs,
            })
            .collect();
        let base = LpProblem {
            ncols: n,
            rows,
            objective,
            lb: lb0.clone(),
            ub: ub0.clone(),
        };
        let int_vars: Vec<usize> = model.integer_vars().iter().map(|v| v.index()).collect();
        let is_binary = model
            .vars()
            .iter()
            .map(|v| v.kind == crate::model::VarKind::Binary)
            .collect();
        Ok(BranchAndBound {
            model,
            config,
            base,
            int_vars,
            is_binary,
            lb0,
            ub0,
        })
    }

    /// Runs the search to completion or to a limit.
    ///
    /// # Errors
    ///
    /// See [`solve`].
    pub fn run(&mut self) -> Result<MilpSolution, IlpError> {
        let start = Instant::now();
        let obj_const = self.model.objective().constant();
        let mut best: Option<(f64, Vec<f64>)> = None;
        if let Some(seed) = &self.config.incumbent {
            if self.model.is_feasible(seed, 1e-6) {
                let rounded = self.round_ints(seed.clone());
                let obj = self.model.objective().eval(&rounded);
                best = Some((obj, rounded));
            }
        }

        let mut stack: Vec<(Vec<f64>, Vec<f64>)> = vec![(self.lb0.clone(), self.ub0.clone())];
        let mut nodes = 0usize;
        let mut limit_hit = false;

        while let Some((lb, ub)) = stack.pop() {
            if nodes >= self.config.max_nodes {
                limit_hit = true;
                break;
            }
            if let Some(tl) = self.config.time_limit {
                if start.elapsed() >= tl {
                    limit_hit = true;
                    break;
                }
            }
            nodes += 1;

            let (x, obj) = match solve_lp_with_bounds(&self.base, &lb, &ub)? {
                LpResult::Optimal { x, objective } => (x, objective),
                LpResult::Infeasible => continue,
                LpResult::Unbounded => continue, // cannot happen with finite bounds
            };
            let bound = match (&best, self.config.cutoff) {
                (Some((b, _)), Some(c)) => Some(b.min(c)),
                (Some((b, _)), None) => Some(*b),
                (None, c) => c,
            };
            if let Some(bound) = bound {
                // LP objective excludes the model's objective constant; the
                // incumbent/cutoff objective includes it.
                if obj + obj_const >= bound - 1e-9 {
                    continue;
                }
            }
            // Branch on the most fractional variable, binaries first:
            // fixing structural 0/1 decisions (bindings, configurations,
            // conflict selectors) collapses the big-M disjunctions much
            // faster than squeezing start-time integers.
            let mut branch: Option<(usize, f64)> = None;
            let mut best_key = (false, self.config.int_tol);
            for &j in &self.int_vars {
                let f = (x[j] - x[j].round()).abs();
                if f <= self.config.int_tol {
                    continue;
                }
                let key = (self.is_binary[j], f);
                if key > best_key {
                    best_key = key;
                    branch = Some((j, x[j]));
                }
            }
            match branch {
                None => {
                    let rounded = self.round_ints(x);
                    if self.model.is_feasible(&rounded, 1e-5) {
                        let robj = self.model.objective().eval(&rounded);
                        if best.as_ref().is_none_or(|(b, _)| robj < *b - 1e-9) {
                            best = Some((robj, rounded));
                        }
                    }
                }
                Some((j, xj)) => {
                    let floor = xj.floor();
                    // Explore the nearer branch first (pushed last).
                    let mut down = (lb.clone(), ub.clone());
                    down.1[j] = floor.min(ub[j]);
                    let mut up = (lb, ub);
                    up.0[j] = (floor + 1.0).max(up.0[j]);
                    let down_feasible = down.0[j] <= down.1[j] + 1e-12;
                    let up_feasible = up.0[j] <= up.1[j] + 1e-12;
                    if xj - floor <= 0.5 {
                        if up_feasible {
                            stack.push(up);
                        }
                        if down_feasible {
                            stack.push(down);
                        }
                    } else {
                        if down_feasible {
                            stack.push(down);
                        }
                        if up_feasible {
                            stack.push(up);
                        }
                    }
                }
            }
        }

        match best {
            Some((objective, values)) => Ok(MilpSolution {
                values,
                objective,
                status: if limit_hit {
                    SolveStatus::Feasible
                } else {
                    SolveStatus::Optimal
                },
                nodes,
            }),
            None if limit_hit => Err(IlpError::LimitWithoutSolution),
            None => Err(IlpError::Infeasible),
        }
    }

    fn round_ints(&self, mut x: Vec<f64>) -> Vec<f64> {
        for &j in &self.int_vars {
            x[j] = x[j].round();
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, Sense};

    fn cfg() -> SolverConfig {
        SolverConfig::default()
    }

    #[test]
    fn knapsack_small() {
        let mut m = Model::minimize();
        let a = m.binary("a");
        let b = m.binary("b");
        let c = m.binary("c");
        m.add_con(2.0 * a + 3.0 * b + 4.0 * c, Sense::Le, 5.0);
        m.set_objective(-(3.0 * a + 4.0 * b + 5.0 * c));
        let sol = solve(&m, &cfg()).unwrap();
        assert_eq!(sol.objective, -7.0);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!(sol.is_one(a) && sol.is_one(b) && !sol.is_one(c));
    }

    #[test]
    fn integer_rounding_matters() {
        // LP optimum is fractional; ILP must branch.
        // max x + y s.t. 2x + 2y <= 3, integers -> best 1.
        let mut m = Model::minimize();
        let x = m.integer("x", 0.0, 5.0);
        let y = m.integer("y", 0.0, 5.0);
        m.add_con(2.0 * x + 2.0 * y, Sense::Le, 3.0);
        m.set_objective(-(x + y));
        let sol = solve(&m, &cfg()).unwrap();
        assert_eq!(sol.objective, -1.0);
    }

    #[test]
    fn infeasible_integer_program() {
        // 2x == 1 with x integer.
        let mut m = Model::minimize();
        let x = m.integer("x", 0.0, 5.0);
        m.add_con(2.0 * x, Sense::Eq, 1.0);
        assert!(matches!(solve(&m, &cfg()), Err(IlpError::Infeasible)));
    }

    #[test]
    fn equality_with_integers() {
        // x + y == 4, minimize |x - 3| proxy: minimize (3 - x) with x <= 3.
        let mut m = Model::minimize();
        let x = m.integer("x", 0.0, 3.0);
        let y = m.integer("y", 0.0, 10.0);
        m.add_con(x + y, Sense::Eq, 4.0);
        m.set_objective(-(1.0 * x));
        let sol = solve(&m, &cfg()).unwrap();
        assert_eq!(sol.value(x), 3.0);
        assert_eq!(sol.value(y), 1.0);
    }

    #[test]
    fn objective_constant_is_respected() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        m.set_objective(x + 10.0);
        let sol = solve(&m, &cfg()).unwrap();
        assert_eq!(sol.objective, 10.0);
        assert_eq!(sol.value(x), 0.0);
    }

    #[test]
    fn warm_incumbent_is_used_under_zero_node_limit() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        m.set_objective(1.0 * x);
        let config = SolverConfig {
            max_nodes: 0,
            incumbent: Some(vec![1.0]),
            ..SolverConfig::default()
        };
        let sol = solve(&m, &config).unwrap();
        assert_eq!(sol.status, SolveStatus::Feasible);
        assert_eq!(sol.objective, 1.0);
    }

    #[test]
    fn limit_without_incumbent_errors() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        m.set_objective(1.0 * x);
        let config = SolverConfig {
            max_nodes: 0,
            ..SolverConfig::default()
        };
        assert!(matches!(
            solve(&m, &config),
            Err(IlpError::LimitWithoutSolution)
        ));
    }

    #[test]
    fn infeasible_incumbent_is_ignored() {
        let mut m = Model::minimize();
        let x = m.binary("x");
        m.add_con(1.0 * x, Sense::Ge, 1.0);
        m.set_objective(1.0 * x);
        let config = SolverConfig {
            incumbent: Some(vec![0.0]), // violates x >= 1
            ..SolverConfig::default()
        };
        let sol = solve(&m, &config).unwrap();
        assert_eq!(sol.objective, 1.0);
    }

    #[test]
    fn big_m_disjunction() {
        // Either x >= 5 or y >= 5 via big-M with binary selector.
        let mut m = Model::minimize();
        let x = m.integer("x", 0.0, 10.0);
        let y = m.integer("y", 0.0, 10.0);
        let q = m.binary("q");
        let big = 100.0;
        // x >= 5 - M q ; y >= 5 - M (1 - q)
        m.add_con(1.0 * x + big * q, Sense::Ge, 5.0);
        m.add_con(1.0 * y - big * q, Sense::Ge, 5.0 - big);
        m.set_objective(x + y);
        let sol = solve(&m, &cfg()).unwrap();
        assert_eq!(sol.objective, 5.0);
    }

    /// Exhaustive cross-check on random small pure-integer programs.
    #[test]
    fn randomised_against_enumeration() {
        let mut rng = mfhls_graph::rng::SplitMix64::seed_from_u64(99);
        for trial in 0..60 {
            let n = rng.gen_index(1, 4);
            let m_rows = rng.gen_index(0, 4);
            let ubs: Vec<i64> = (0..n).map(|_| rng.gen_range_i64(0, 4)).collect();
            let mut model = Model::minimize();
            let vars: Vec<VarId> = (0..n)
                .map(|j| model.integer(&format!("v{j}"), 0.0, ubs[j] as f64))
                .collect();
            let rows: Vec<(Vec<i64>, Sense, i64)> = (0..m_rows)
                .map(|_| {
                    let coeffs: Vec<i64> = (0..n).map(|_| rng.gen_range_i64(-3, 4)).collect();
                    let sense = match rng.gen_index(0, 3) {
                        0 => Sense::Le,
                        1 => Sense::Ge,
                        _ => Sense::Eq,
                    };
                    (coeffs, sense, rng.gen_range_i64(-4, 8))
                })
                .collect();
            for (coeffs, sense, rhs) in &rows {
                let expr = crate::LinExpr::weighted_sum(
                    vars.iter().zip(coeffs).map(|(&v, &c)| (v, c as f64)),
                );
                model.add_con(expr, *sense, *rhs as f64);
            }
            let obj_coeffs: Vec<i64> = (0..n).map(|_| rng.gen_range_i64(-3, 4)).collect();
            model.set_objective(crate::LinExpr::weighted_sum(
                vars.iter().zip(&obj_coeffs).map(|(&v, &c)| (v, c as f64)),
            ));

            // Enumerate.
            let mut best: Option<f64> = None;
            let mut assign = vec![0i64; n];
            loop {
                let xs: Vec<f64> = assign.iter().map(|&v| v as f64).collect();
                if model.is_feasible(&xs, 1e-9) {
                    let o = model.objective().eval(&xs);
                    best = Some(best.map_or(o, |b: f64| b.min(o)));
                }
                // increment odometer
                let mut k = 0;
                loop {
                    if k == n {
                        break;
                    }
                    assign[k] += 1;
                    if assign[k] <= ubs[k] {
                        break;
                    }
                    assign[k] = 0;
                    k += 1;
                }
                if k == n {
                    break;
                }
            }

            match (solve(&model, &cfg()), best) {
                (Ok(sol), Some(b)) => {
                    assert!(
                        (sol.objective - b).abs() < 1e-6,
                        "trial {trial}: solver {} vs enumeration {b}",
                        sol.objective
                    );
                }
                (Err(IlpError::Infeasible), None) => {}
                (got, want) => panic!("trial {trial}: solver {got:?} vs enumeration {want:?}"),
            }
        }
    }
}
