//! Deterministic shard assignment for the serve plane.
//!
//! Every admitted request is routed to one of `S` shard worker-groups by
//! an FNV-1a 64 hash of its **canonical request bytes** (the request
//! re-serialized through the deterministic [`Json`](crate::json::Json)
//! writer, see [`canonical_request_bytes`](crate::api::canonical_request_bytes)).
//! Hashing the canonical form rather than the raw wire line means two
//! clients sending the same request with different whitespace or key
//! order land on the same shard — and, more importantly, that the
//! assignment is a pure function of request *content*, independent of
//! transport framing, worker counts, or timing. The response stream
//! stays byte-identical at any shard count because the ordered
//! cross-shard reduction reassembles responses by admission index, not
//! by shard completion order (see `service::run_window`).

/// FNV-1a 64-bit over `bytes` — the same dependency-free hash the
/// `mfhls-store` record format uses for checksums.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The shard a request with these canonical bytes belongs to, in
/// `0..shards`. Stable across processes, platforms, and releases (the
/// hash and the reduction are both pinned), so a load balancer in front
/// of several processes can precompute the same routing.
pub fn shard_of(canonical_bytes: &[u8], shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    (fnv1a64(canonical_bytes) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for shards in [1usize, 2, 3, 4, 7, 64] {
            for seed in 0..50u64 {
                let bytes = seed.to_le_bytes();
                let s = shard_of(&bytes, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(&bytes, shards), "stable");
            }
        }
        assert_eq!(shard_of(b"anything", 0), 0);
        assert_eq!(shard_of(b"anything", 1), 0);
    }

    #[test]
    fn shards_are_reasonably_balanced() {
        // 1000 distinct keys over 4 shards: no shard should be empty or
        // hold more than half the keys.
        let mut counts = [0usize; 4];
        for k in 0..1000u32 {
            counts[shard_of(format!("req-{k}").as_bytes(), 4)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 100, "shard {s} starved: {counts:?}");
            assert!(c < 500, "shard {s} overloaded: {counts:?}");
        }
    }
}
