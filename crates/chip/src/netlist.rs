//! Flow-channel netlist: devices plus the transportation paths between them.

use crate::{ChipError, Device, DeviceConfig, DeviceId};
use std::collections::{BTreeMap, BTreeSet};

/// Canonical (unordered) key for a flow path between two devices.
///
/// A physical flow channel is usable in both directions, so `(a, b)` and
/// `(b, a)` denote the same path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathKey(pub DeviceId, pub DeviceId);

impl PathKey {
    /// Creates a canonical key (smaller id first).
    pub fn new(a: DeviceId, b: DeviceId) -> Self {
        if a <= b {
            PathKey(a, b)
        } else {
            PathKey(b, a)
        }
    }
}

impl std::fmt::Display for PathKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}~{}", self.0, self.1)
    }
}

/// The device + flow-path structure implied by a binding solution.
///
/// Tracks how often each device-to-device path is used by reagent
/// transfers; the layout estimator converts usage into channel lengths, and
/// the path count feeds the `sum_p` objective term (eq. 21).
///
/// # Example
///
/// ```
/// use mfhls_chip::{AccessorySet, Capacity, ContainerKind, DeviceConfig, DeviceId, Netlist};
///
/// let mut net = Netlist::new();
/// let cfg = DeviceConfig::new(ContainerKind::Chamber, Capacity::Small, AccessorySet::empty())?;
/// let a = net.add_device(cfg);
/// let b = net.add_device(cfg);
/// net.record_transfer(a, b)?;
/// net.record_transfer(b, a)?; // same physical path
/// assert_eq!(net.path_count(), 1);
/// # Ok::<(), mfhls_chip::ChipError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Netlist {
    devices: Vec<Device>,
    paths: BTreeMap<PathKey, u64>,
    /// Devices withdrawn after a run-time fault. Quarantine never renumbers:
    /// the device keeps its id (and its fabricated footprint on the chip),
    /// it just stops being usable.
    quarantined: BTreeSet<usize>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Adds a device, returning its id.
    pub fn add_device(&mut self, config: DeviceConfig) -> DeviceId {
        let id = DeviceId(self.devices.len());
        self.devices.push(Device { id, config });
        id
    }

    /// Device list.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Looks up a device configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::UnknownDevice`] for a foreign id.
    pub fn device(&self, id: DeviceId) -> Result<&Device, ChipError> {
        self.devices.get(id.0).ok_or(ChipError::UnknownDevice(id.0))
    }

    /// Mutable access to a device configuration (for accessory retrofits).
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::UnknownDevice`] for a foreign id and
    /// [`ChipError::QuarantinedDevice`] for dead hardware (a failed device
    /// cannot be retrofitted back to life).
    pub fn device_config_mut(&mut self, id: DeviceId) -> Result<&mut DeviceConfig, ChipError> {
        if self.quarantined.contains(&id.0) {
            return Err(ChipError::QuarantinedDevice(id.0));
        }
        self.devices
            .get_mut(id.0)
            .map(|d| &mut d.config)
            .ok_or(ChipError::UnknownDevice(id.0))
    }

    /// Withdraws a device after a run-time fault. Survivors keep their ids:
    /// no renumbering happens, the device merely becomes invisible to
    /// [`Netlist::active_devices`] and unusable for new transfers.
    /// Quarantining an already quarantined device is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::UnknownDevice`] for a foreign id.
    pub fn quarantine(&mut self, id: DeviceId) -> Result<(), ChipError> {
        if id.0 >= self.devices.len() {
            return Err(ChipError::UnknownDevice(id.0));
        }
        self.quarantined.insert(id.0);
        Ok(())
    }

    /// Whether `id` has been quarantined. Foreign ids are not quarantined.
    pub fn is_quarantined(&self, id: DeviceId) -> bool {
        self.quarantined.contains(&id.0)
    }

    /// Ids of all quarantined devices, ascending.
    pub fn quarantined(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.quarantined.iter().map(|&i| DeviceId(i))
    }

    /// Devices still in service (original ids preserved).
    pub fn active_devices(&self) -> impl Iterator<Item = &Device> {
        self.devices
            .iter()
            .filter(|d| !self.quarantined.contains(&d.id.0))
    }

    /// Number of devices still in service.
    pub fn active_device_count(&self) -> usize {
        self.devices.len() - self.quarantined.len()
    }

    /// Records one reagent transfer from `a` to `b`, creating the path on
    /// first use. A transfer within one device (`a == b`) needs no path and
    /// is ignored.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::UnknownDevice`] if either id is foreign, or
    /// [`ChipError::QuarantinedDevice`] if either endpoint is quarantined.
    pub fn record_transfer(&mut self, a: DeviceId, b: DeviceId) -> Result<(), ChipError> {
        for id in [a, b] {
            if id.0 >= self.devices.len() {
                return Err(ChipError::UnknownDevice(id.0));
            }
            if self.quarantined.contains(&id.0) {
                return Err(ChipError::QuarantinedDevice(id.0));
            }
        }
        if a != b {
            *self.paths.entry(PathKey::new(a, b)).or_insert(0) += 1;
        }
        Ok(())
    }

    /// Number of distinct transportation paths (`sum_p`).
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// Iterates `(path, usage)` pairs in key order.
    pub fn paths(&self) -> impl Iterator<Item = (PathKey, u64)> + '_ {
        self.paths.iter().map(|(&k, &v)| (k, v))
    }

    /// Usage count of a specific path (0 if absent).
    pub fn path_usage(&self, a: DeviceId, b: DeviceId) -> u64 {
        self.paths.get(&PathKey::new(a, b)).copied().unwrap_or(0)
    }

    /// Total accumulated transfers across all paths.
    pub fn total_transfers(&self) -> u64 {
        self.paths.values().sum()
    }

    /// Paths sorted by descending usage (ties by key): the layout estimator
    /// and the transport-time refinement both want the busiest paths first.
    pub fn paths_by_usage(&self) -> Vec<(PathKey, u64)> {
        let mut all: Vec<(PathKey, u64)> = self.paths().collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all
    }

    /// Paths whose both endpoints are still in service. A path touching a
    /// quarantined device stays on the chip but is useless, so survivability
    /// analysis iterates these instead of [`Netlist::paths`].
    pub fn usable_paths(&self) -> impl Iterator<Item = (PathKey, u64)> + '_ {
        self.paths().filter(|(k, _)| {
            !self.quarantined.contains(&k.0 .0) && !self.quarantined.contains(&k.1 .0)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessorySet, Capacity, ContainerKind};

    fn chamber() -> DeviceConfig {
        DeviceConfig::new(
            ContainerKind::Chamber,
            Capacity::Small,
            AccessorySet::empty(),
        )
        .unwrap()
    }

    #[test]
    fn path_key_is_unordered() {
        let (a, b) = (DeviceId(3), DeviceId(1));
        assert_eq!(PathKey::new(a, b), PathKey::new(b, a));
        assert_eq!(PathKey::new(a, b), PathKey(DeviceId(1), DeviceId(3)));
    }

    #[test]
    fn transfers_accumulate() {
        let mut net = Netlist::new();
        let a = net.add_device(chamber());
        let b = net.add_device(chamber());
        let c = net.add_device(chamber());
        net.record_transfer(a, b).unwrap();
        net.record_transfer(b, a).unwrap();
        net.record_transfer(a, c).unwrap();
        assert_eq!(net.path_count(), 2);
        assert_eq!(net.path_usage(a, b), 2);
        assert_eq!(net.path_usage(a, c), 1);
        assert_eq!(net.total_transfers(), 3);
    }

    #[test]
    fn same_device_transfer_is_free() {
        let mut net = Netlist::new();
        let a = net.add_device(chamber());
        net.record_transfer(a, a).unwrap();
        assert_eq!(net.path_count(), 0);
    }

    #[test]
    fn unknown_device_is_an_error() {
        let mut net = Netlist::new();
        let a = net.add_device(chamber());
        assert_eq!(
            net.record_transfer(a, DeviceId(9)),
            Err(ChipError::UnknownDevice(9))
        );
        assert!(net.device(DeviceId(9)).is_err());
    }

    #[test]
    fn paths_by_usage_sorts_descending() {
        let mut net = Netlist::new();
        let a = net.add_device(chamber());
        let b = net.add_device(chamber());
        let c = net.add_device(chamber());
        for _ in 0..3 {
            net.record_transfer(a, c).unwrap();
        }
        net.record_transfer(a, b).unwrap();
        let order = net.paths_by_usage();
        assert_eq!(order[0].0, PathKey::new(a, c));
        assert_eq!(order[0].1, 3);
        assert_eq!(order[1].1, 1);
    }

    #[test]
    fn quarantine_preserves_survivor_ids() {
        let mut net = Netlist::new();
        let a = net.add_device(chamber());
        let b = net.add_device(chamber());
        let c = net.add_device(chamber());
        net.record_transfer(a, b).unwrap();
        net.record_transfer(b, c).unwrap();
        net.quarantine(b).unwrap();
        assert!(net.is_quarantined(b));
        assert!(!net.is_quarantined(a));
        assert_eq!(net.active_device_count(), 2);
        // Survivors keep their original ids.
        let alive: Vec<DeviceId> = net.active_devices().map(|d| d.id).collect();
        assert_eq!(alive, vec![a, c]);
        assert_eq!(net.quarantined().collect::<Vec<_>>(), vec![b]);
        // Paths through the dead device disappear from the usable view but
        // stay on the chip.
        assert_eq!(net.path_count(), 2);
        assert_eq!(net.usable_paths().count(), 0);
        // Double quarantine is a no-op; foreign ids error.
        net.quarantine(b).unwrap();
        assert_eq!(net.active_device_count(), 2);
        assert_eq!(
            net.quarantine(DeviceId(9)),
            Err(ChipError::UnknownDevice(9))
        );
    }

    #[test]
    fn quarantined_device_rejects_traffic_and_retrofits() {
        let mut net = Netlist::new();
        let a = net.add_device(chamber());
        let b = net.add_device(chamber());
        net.quarantine(a).unwrap();
        assert_eq!(
            net.record_transfer(a, b),
            Err(ChipError::QuarantinedDevice(0))
        );
        assert_eq!(
            net.device_config_mut(a).unwrap_err(),
            ChipError::QuarantinedDevice(0)
        );
        // The config stays readable for reporting.
        assert!(net.device(a).is_ok());
        // The survivor is unaffected.
        net.device_config_mut(b).unwrap();
    }

    #[test]
    fn retrofit_through_netlist() {
        let mut net = Netlist::new();
        let a = net.add_device(chamber());
        net.device_config_mut(a)
            .unwrap()
            .add_accessories(AccessorySet::all());
        assert_eq!(net.device(a).unwrap().config.accessories().len(), 5);
    }
}
