//! A small text format for component-oriented assay descriptions.
//!
//! The component-oriented operation definition of §2.2 (container,
//! capacity, accessories, duration, dependencies) maps naturally onto a
//! human-writable format:
//!
//! ```text
//! assay "kinase demo"
//!
//! op load "load bead column" {
//!     container: chamber
//!     capacity: medium
//!     accessories: [sieve-valve]
//!     duration: 8m
//! }
//!
//! op capture {
//!     accessories: [cell-trap, optical-system]
//!     duration: >= 3m
//!     after: [load]
//! }
//! ```
//!
//! Each `op` has an identifier (used by `after`), an optional quoted
//! display name, and `key: value` attributes in any order. Durations are
//! minutes; `>=` marks an indeterminate duration with a minimum.
//!
//! `repeat N { ... }` instantiates a block of ops `N` times — the
//! replication mechanism the paper uses to scale its benchmarks ("we
//! introduce replicated operations with the same protocol of the original
//! assay"). Instance `k` of `op x` becomes `x_k`; `after` references to
//! idents defined inside the block bind within the same instance, outer
//! references bind globally:
//!
//! ```text
//! assay "scaled"
//! op beads { duration: 8m }
//! repeat 10 {
//!     op capture { duration: >= 3m after: [beads] }
//!     op detect  { duration: 5m   after: [capture] }
//! }
//! ```
//!
//! [`parse`] builds an [`Assay`]; [`to_text`] prints one back out
//! (round-trip stable, which the test-suite checks property-style).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mfhls_chip::{Accessory, Capacity, ContainerKind};
use mfhls_core::{Assay, Duration, OpId, Operation};
use std::collections::{BTreeMap, BTreeSet};

/// A parse failure, with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error was detected on.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Number(u64),
    Minutes(u64),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Colon,
    Comma,
    Ge,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            pos: 0,
            line: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn bump(&mut self, n: usize) {
        for c in self.src[self.pos..self.pos + n].chars() {
            if c == '\n' {
                self.line += 1;
            }
        }
        self.pos += n;
    }

    fn skip_trivia(&mut self) {
        loop {
            let rest = self.rest();
            if let Some(c) = rest.chars().next() {
                if c.is_whitespace() {
                    self.bump(c.len_utf8());
                    continue;
                }
                if rest.starts_with('#') {
                    let n = rest.find('\n').unwrap_or(rest.len());
                    self.bump(n);
                    continue;
                }
            }
            break;
        }
    }

    fn next_token(&mut self) -> Result<Option<(Token, usize)>, ParseError> {
        self.skip_trivia();
        let line = self.line;
        let rest = self.rest();
        let Some(c) = rest.chars().next() else {
            return Ok(None);
        };
        let tok = match c {
            '{' => {
                self.bump(1);
                Token::LBrace
            }
            '}' => {
                self.bump(1);
                Token::RBrace
            }
            '[' => {
                self.bump(1);
                Token::LBracket
            }
            ']' => {
                self.bump(1);
                Token::RBracket
            }
            ':' => {
                self.bump(1);
                Token::Colon
            }
            ',' => {
                self.bump(1);
                Token::Comma
            }
            '>' => {
                if rest.starts_with(">=") {
                    self.bump(2);
                    Token::Ge
                } else {
                    return Err(self.error("expected '>='"));
                }
            }
            '"' => {
                // Backslash escapes so display names containing quotes or
                // backslashes (legal in programmatically built assays)
                // survive a `to_text` → `parse` round trip.
                let mut s = String::new();
                let mut chars = rest[1..].char_indices();
                let mut closed = None;
                while let Some((i, ch)) = chars.next() {
                    match ch {
                        '"' => {
                            closed = Some(i);
                            break;
                        }
                        '\\' => match chars.next() {
                            Some((_, '"')) => s.push('"'),
                            Some((_, '\\')) => s.push('\\'),
                            Some((_, 'n')) => s.push('\n'),
                            Some((_, 't')) => s.push('\t'),
                            Some((_, other)) => {
                                return Err(self.error(format!(
                                    "unknown escape '\\{other}' in string (\\\" \\\\ \\n \\t)"
                                )))
                            }
                            None => return Err(self.error("unterminated string")),
                        },
                        other => s.push(other),
                    }
                }
                let Some(end) = closed else {
                    return Err(self.error("unterminated string"));
                };
                self.bump(end + 2);
                Token::Str(s)
            }
            d if d.is_ascii_digit() => {
                let n = rest
                    .find(|ch: char| !ch.is_ascii_digit())
                    .unwrap_or(rest.len());
                let value: u64 = rest[..n]
                    .parse()
                    .map_err(|_| self.error("number out of range"))?;
                self.bump(n);
                if self.rest().starts_with('m') {
                    self.bump(1);
                    Token::Minutes(value)
                } else {
                    Token::Number(value)
                }
            }
            a if a.is_alphabetic() || a == '_' => {
                let n = rest
                    .find(|ch: char| !(ch.is_alphanumeric() || ch == '_' || ch == '-'))
                    .unwrap_or(rest.len());
                let word = rest[..n].to_owned();
                self.bump(n);
                Token::Ident(word)
            }
            other => return Err(self.error(format!("unexpected character {other:?}"))),
        };
        Ok(Some((tok, line)))
    }
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    cursor: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.cursor).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.cursor.min(self.tokens.len().saturating_sub(1)))
            .map(|&(_, l)| l)
            .unwrap_or(1)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.cursor).map(|(t, _)| t.clone());
        self.cursor += 1;
        t
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == *want => Ok(()),
            other => Err(ParseError {
                line: self.line(),
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError {
                line: self.line(),
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }
}

/// Parses an assay description.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line for syntax errors,
/// unknown keywords/values, duplicate op identifiers or display names,
/// and `after:` references that do not name a previously defined op —
/// which covers undefined identifiers, forward references, and self
/// references (so no dependency cycle can survive parsing).
///
/// # Example
///
/// ```
/// let text = r#"
/// assay "demo"
/// op mix { container: ring capacity: medium accessories: [pump] duration: 10m }
/// op detect { accessories: [optical-system] duration: 5m after: [mix] }
/// "#;
/// let assay = mfhls_dsl::parse(text)?;
/// assert_eq!(assay.len(), 2);
/// assert_eq!(assay.name(), "demo");
/// # Ok::<(), mfhls_dsl::ParseError>(())
/// ```
pub fn parse(text: &str) -> Result<Assay, ParseError> {
    let mut lexer = Lexer::new(text);
    let mut tokens = Vec::new();
    while let Some(t) = lexer.next_token()? {
        tokens.push(t);
    }
    let mut p = Parser { tokens, cursor: 0 };

    match p.next() {
        Some(Token::Ident(kw)) if kw == "assay" => {}
        _ => {
            return Err(p.error("file must start with: assay \"name\""));
        }
    }
    let name = match p.next() {
        Some(Token::Str(s)) => s,
        _ => return Err(p.error("expected quoted assay name")),
    };
    let mut assay = Assay::new(&name);
    let mut ids: BTreeMap<String, OpId> = BTreeMap::new();
    let mut names: BTreeSet<String> = BTreeSet::new();

    let register = |assay: &mut Assay,
                    ids: &mut BTreeMap<String, OpId>,
                    names: &mut BTreeSet<String>,
                    parsed: ParsedOp,
                    line: usize|
     -> Result<(), ParseError> {
        if ids.contains_key(&parsed.ident) {
            return Err(ParseError {
                line,
                message: format!("duplicate op identifier '{}'", parsed.ident),
            });
        }
        if !names.insert(parsed.op.name().to_owned()) {
            return Err(ParseError {
                line,
                message: format!(
                    "duplicate op name '{}' (op '{}')",
                    parsed.op.name(),
                    parsed.ident
                ),
            });
        }
        // Resolve `after` before the op joins the id table: every
        // reference must point at a previously defined op, which rejects
        // self references and forward references (the only way to write a
        // cycle) right here, naming the offending op.
        let mut parents = Vec::new();
        for (parent, l) in &parsed.after {
            if *parent == parsed.ident {
                return Err(ParseError {
                    line: *l,
                    message: format!("op '{}' cannot appear in its own after list", parsed.ident),
                });
            }
            let Some(&pid) = ids.get(parent) else {
                return Err(ParseError {
                    line: *l,
                    message: format!(
                        "unknown op identifier '{parent}' in after list of op '{}' \
                         (ops must be defined before they are referenced)",
                        parsed.ident
                    ),
                });
            };
            parents.push((pid, *l));
        }
        let id = assay.add_op(parsed.op);
        ids.insert(parsed.ident, id);
        for (pid, l) in parents {
            assay.add_dependency(pid, id).map_err(|e| ParseError {
                line: l,
                message: e.to_string(),
            })?;
        }
        Ok(())
    };

    while let Some(tok) = p.next() {
        match tok {
            Token::Ident(kw) if kw == "op" => {
                let line = p.line();
                let parsed = parse_op(&mut p)?;
                register(&mut assay, &mut ids, &mut names, parsed, line)?;
            }
            Token::Ident(kw) if kw == "repeat" => {
                let count = match p.next() {
                    Some(Token::Number(n)) | Some(Token::Minutes(n)) => n,
                    other => return Err(p.error(format!("expected repeat count, found {other:?}"))),
                };
                p.expect(&Token::LBrace, "'{'")?;
                let mut templates: Vec<ParsedOp> = Vec::new();
                loop {
                    match p.next() {
                        Some(Token::RBrace) => break,
                        Some(Token::Ident(kw)) if kw == "op" => {
                            templates.push(parse_op(&mut p)?);
                        }
                        other => {
                            return Err(p.error(format!(
                                "expected 'op' or '}}' inside repeat, found {other:?}"
                            )))
                        }
                    }
                }
                let local: std::collections::BTreeSet<&str> =
                    templates.iter().map(|t| t.ident.as_str()).collect();
                for k in 1..=count {
                    for template in &templates {
                        let mut inst = template.clone();
                        inst.ident = format!("{}_{k}", template.ident);
                        // Instance-tagged display name.
                        inst.op = rename(&template.op, &format!("{} ({k})", template.op.name()));
                        inst.after = template
                            .after
                            .iter()
                            .map(|(parent, l)| {
                                if local.contains(parent.as_str()) {
                                    (format!("{parent}_{k}"), *l)
                                } else {
                                    (parent.clone(), *l)
                                }
                            })
                            .collect();
                        let line = p.line();
                        register(&mut assay, &mut ids, &mut names, inst, line)?;
                    }
                }
            }
            other => return Err(p.error(format!("expected 'op' or 'repeat', found {other:?}"))),
        }
    }

    Ok(assay)
}

/// Parses an assay description, rejecting assays larger than `max_ops`.
///
/// This is [`parse`] plus an admission-control bound for services that
/// accept untrusted inline DSL (the `mfhls-svc` batched synthesis
/// service): a small `repeat` count multiplies the op count, so byte
/// length alone does not bound the work a request can demand. The limit
/// is checked after parsing — the parser itself is linear in the input —
/// and reported with the total op count so callers can surface a precise
/// rejection.
///
/// # Errors
///
/// Everything [`parse`] rejects, plus a [`ParseError`] (line 1) when the
/// assay defines more than `max_ops` operations.
///
/// # Example
///
/// ```
/// let text = "assay \"big\"\nrepeat 100 { op x { duration: 1m } }";
/// let e = mfhls_dsl::parse_with_limit(text, 64).unwrap_err();
/// assert!(e.message.contains("100"));
/// assert!(mfhls_dsl::parse_with_limit(text, 100).is_ok());
/// ```
pub fn parse_with_limit(text: &str, max_ops: usize) -> Result<Assay, ParseError> {
    let assay = parse(text)?;
    if assay.len() > max_ops {
        return Err(ParseError {
            line: 1,
            message: format!(
                "assay defines {} operations, exceeding the limit of {max_ops}",
                assay.len()
            ),
        });
    }
    Ok(assay)
}

/// Clones `op` with a different display name.
fn rename(op: &Operation, name: &str) -> Operation {
    Operation::new(name)
        .requirements_from(*op.requirements())
        .with_duration(op.duration())
}

/// One parsed `op` item, before registration.
#[derive(Debug, Clone)]
struct ParsedOp {
    ident: String,
    op: Operation,
    after: Vec<(String, usize)>,
}

/// Parses one `op <ident> ["display"] { attrs }` item; the leading `op`
/// keyword has already been consumed.
fn parse_op(p: &mut Parser) -> Result<ParsedOp, ParseError> {
    let ident = p.expect_ident("op identifier")?;
    {
        let display = match p.peek() {
            Some(Token::Str(_)) => match p.next() {
                Some(Token::Str(s)) => Some(s),
                _ => unreachable!("peeked a string"),
            },
            _ => None,
        };
        p.expect(&Token::LBrace, "'{'")?;
        let mut op = Operation::new(display.as_deref().unwrap_or(&ident));
        let mut after: Vec<(String, usize)> = Vec::new();
        loop {
            match p.next() {
                Some(Token::RBrace) => break,
                Some(Token::Ident(key)) => {
                    p.expect(&Token::Colon, "':'")?;
                    match key.as_str() {
                        "container" => {
                            let v = p.expect_ident("container kind")?;
                            op = op.container(match v.as_str() {
                                "ring" => ContainerKind::Ring,
                                "chamber" => ContainerKind::Chamber,
                                other => {
                                    return Err(p.error(format!(
                                        "unknown container '{other}' (ring|chamber)"
                                    )))
                                }
                            });
                        }
                        "capacity" => {
                            let v = p.expect_ident("capacity")?;
                            op = op.capacity(match v.as_str() {
                                "large" => Capacity::Large,
                                "medium" => Capacity::Medium,
                                "small" => Capacity::Small,
                                "tiny" => Capacity::Tiny,
                                other => {
                                    return Err(p.error(format!(
                                        "unknown capacity '{other}' (large|medium|small|tiny)"
                                    )))
                                }
                            });
                        }
                        "accessories" => {
                            p.expect(&Token::LBracket, "'['")?;
                            loop {
                                match p.next() {
                                    Some(Token::RBracket) => break,
                                    Some(Token::Comma) => continue,
                                    Some(Token::Ident(a)) => {
                                        op =
                                            op.accessory(parse_accessory(&a).ok_or_else(|| {
                                                p.error(format!("unknown accessory '{a}'"))
                                            })?);
                                    }
                                    other => {
                                        return Err(
                                            p.error(format!("expected accessory, found {other:?}"))
                                        )
                                    }
                                }
                            }
                        }
                        "duration" => {
                            let indeterminate = matches!(p.peek(), Some(Token::Ge));
                            if indeterminate {
                                p.next();
                            }
                            let minutes = match p.next() {
                                Some(Token::Minutes(v)) | Some(Token::Number(v)) => v,
                                other => {
                                    return Err(p.error(format!(
                                        "expected duration in minutes, found {other:?}"
                                    )))
                                }
                            };
                            op = op.with_duration(if indeterminate {
                                Duration::at_least(minutes)
                            } else {
                                Duration::fixed(minutes)
                            });
                        }
                        "after" => {
                            p.expect(&Token::LBracket, "'['")?;
                            loop {
                                match p.next() {
                                    Some(Token::RBracket) => break,
                                    Some(Token::Comma) => continue,
                                    Some(Token::Ident(parent)) => {
                                        after.push((parent, p.line()));
                                    }
                                    other => {
                                        return Err(p.error(format!(
                                            "expected op identifier, found {other:?}"
                                        )))
                                    }
                                }
                            }
                        }
                        other => {
                            return Err(p.error(format!(
                                "unknown attribute '{other}' \
                                         (container|capacity|accessories|duration|after)"
                            )))
                        }
                    }
                }
                other => {
                    return Err(p.error(format!("expected attribute or '}}', found {other:?}")))
                }
            }
        }
        Ok(ParsedOp { ident, op, after })
    }
}

fn parse_accessory(s: &str) -> Option<Accessory> {
    match s.replace('_', "-").as_str() {
        "pump" => Some(Accessory::Pump),
        "heating-pad" => Some(Accessory::HeatingPad),
        "optical-system" => Some(Accessory::OpticalSystem),
        "sieve-valve" => Some(Accessory::SieveValve),
        "cell-trap" => Some(Accessory::CellTrap),
        _ => None,
    }
}

/// Escapes a display name for the quoted-string syntax (inverse of the
/// lexer's escape handling).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

/// Prints an assay in the DSL format; [`parse`] of the output reproduces
/// the assay (ids are `o0`, `o1`, … in operation order).
///
/// Display names are escaped, and because [`parse`] rejects duplicate
/// display names, a repeated name is deterministically disambiguated with
/// an ` (oK)` suffix (K = the op's index). Everything structural —
/// requirements, durations, dependencies — round-trips unchanged.
///
/// # Example
///
/// ```
/// use mfhls_core::{Assay, Duration, Operation};
///
/// let mut a = Assay::new("round trip");
/// a.add_op(Operation::new("mix").with_duration(Duration::fixed(3)));
/// let text = mfhls_dsl::to_text(&a);
/// let back = mfhls_dsl::parse(&text)?;
/// assert_eq!(back.len(), 1);
/// # Ok::<(), mfhls_dsl::ParseError>(())
/// ```
pub fn to_text(assay: &Assay) -> String {
    let mut out = format!("assay \"{}\"\n", escape(assay.name()));
    let mut used: BTreeSet<String> = BTreeSet::new();
    for (id, op) in assay.iter() {
        let mut name = op.name().to_owned();
        while !used.insert(name.clone()) {
            name = format!("{name} (o{})", id.index());
        }
        out.push_str(&format!("\nop o{} \"{}\" {{\n", id.index(), escape(&name)));
        let req = op.requirements();
        if let Some(kind) = req.container {
            out.push_str(&format!("    container: {kind}\n"));
        }
        if let Some(cap) = req.capacity {
            out.push_str(&format!("    capacity: {cap}\n"));
        }
        if !req.accessories.is_empty() {
            let list: Vec<String> = req.accessories.iter().map(|a| a.to_string()).collect();
            out.push_str(&format!("    accessories: [{}]\n", list.join(", ")));
        }
        match op.duration() {
            Duration::Fixed(d) => out.push_str(&format!("    duration: {d}m\n")),
            Duration::Indeterminate { min } => out.push_str(&format!("    duration: >= {min}m\n")),
        }
        let parents = assay.parents(id);
        if !parents.is_empty() {
            let list: Vec<String> = parents.iter().map(|p| format!("o{}", p.index())).collect();
            out.push_str(&format!("    after: [{}]\n", list.join(", ")));
        }
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# A commented sample.
assay "sample"

op load "load beads" {
    container: chamber
    capacity: medium
    accessories: [sieve-valve]
    duration: 8m
}

op capture {
    accessories: [cell_trap, optical_system]
    duration: >= 3m
    after: [load]
}
"#;

    #[test]
    fn parses_sample() {
        let a = parse(SAMPLE).unwrap();
        assert_eq!(a.name(), "sample");
        assert_eq!(a.len(), 2);
        let load = a.op(OpId(0));
        assert_eq!(load.name(), "load beads");
        assert_eq!(load.requirements().container, Some(ContainerKind::Chamber));
        assert_eq!(load.requirements().capacity, Some(Capacity::Medium));
        assert!(load
            .requirements()
            .accessories
            .contains(Accessory::SieveValve));
        assert_eq!(load.duration(), Duration::fixed(8));
        let cap = a.op(OpId(1));
        assert_eq!(cap.name(), "capture");
        assert!(cap.is_indeterminate());
        assert!(cap.requirements().accessories.contains(Accessory::CellTrap));
        assert_eq!(a.parents(OpId(1)), vec![OpId(0)]);
    }

    #[test]
    fn underscores_and_dashes_both_work() {
        for name in ["cell_trap", "cell-trap"] {
            let t = format!("assay \"x\"\nop a {{ accessories: [{name}] duration: 1m }}");
            let a = parse(&t).unwrap();
            assert!(a
                .op(OpId(0))
                .requirements()
                .accessories
                .contains(Accessory::CellTrap));
        }
    }

    #[test]
    fn duration_without_m_suffix() {
        let a = parse("assay \"x\"\nop a { duration: 5 }").unwrap();
        assert_eq!(a.op(OpId(0)).duration(), Duration::fixed(5));
    }

    #[test]
    fn error_reports_line() {
        let text = "assay \"x\"\nop a {\n    bogus: 1\n}";
        let e = parse(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn unknown_parent_is_an_error() {
        let e = parse("assay \"x\"\nop a { duration: 1m after: [ghost] }").unwrap_err();
        assert!(e.message.contains("ghost"));
    }

    #[test]
    fn duplicate_ident_is_an_error() {
        let e = parse("assay \"x\"\nop a { duration: 1m }\nop a { duration: 2m }").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn self_reference_is_an_error() {
        // Self-dependency is the smallest cycle expressible; it is caught
        // at registration with a message naming the op.
        let e = parse("assay \"x\"\nop a { duration: 1m after: [a] }").unwrap_err();
        assert!(e.message.contains("'a'"), "{e}");
        assert!(e.message.contains("own after list"), "{e}");
    }

    #[test]
    fn forward_reference_is_an_error() {
        // `b` is defined later in the file; references must point backward,
        // which is what makes cycles unrepresentable.
        let e = parse(
            "assay \"x\"\nop a { duration: 1m after: [b] }\nop b { duration: 1m after: [a] }",
        )
        .unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown op identifier 'b'"), "{e}");
        assert!(e.message.contains("'a'"), "{e}");
    }

    #[test]
    fn duplicate_display_name_is_an_error() {
        let e = parse("assay \"x\"\nop a \"mix\" { duration: 1m }\nop b \"mix\" { duration: 2m }")
            .unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("duplicate op name 'mix'"), "{e}");
        assert!(e.message.contains("'b'"), "{e}");
    }

    #[test]
    fn missing_header_is_an_error() {
        assert!(parse("op a { duration: 1m }").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(parse("assay \"x").is_err());
    }

    #[test]
    fn repeat_block_instantiates() {
        let text = r#"
assay "scaled"
op beads { duration: 8m }
repeat 3 {
    op capture { duration: >= 3m after: [beads] }
    op detect { duration: 5m after: [capture] }
}
"#;
        let a = parse(text).unwrap();
        assert_eq!(a.len(), 1 + 3 * 2);
        // Instance naming: capture (1) .. capture (3).
        let names: Vec<&str> = a.iter().map(|(_, op)| op.name()).collect();
        assert!(names.contains(&"capture (2)"));
        assert!(names.contains(&"detect (3)"));
        // All captures hang off the shared beads op; detects off their own
        // instance's capture.
        let beads = OpId(0);
        assert_eq!(a.children(beads).len(), 3);
        for k in 0..3 {
            let capture = OpId(1 + 2 * k);
            let detect = OpId(2 + 2 * k);
            assert_eq!(a.parents(detect), vec![capture]);
        }
        // The scaled assay layers like the paper's replicated cases.
        let l = mfhls_core::layer_assay(&a, 10).unwrap();
        assert_eq!(l.num_layers(), 2);
    }

    #[test]
    fn repeat_rejects_cross_instance_duplicates() {
        // The same ident appearing at top level and inside repeat collides
        // after suffixing only if identical; x vs x_1 do not collide.
        let text = r#"
assay "t"
op x_1 { duration: 1m }
repeat 1 {
    op x { duration: 1m }
}
"#;
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn repeat_zero_is_empty() {
        let a = parse("assay \"t\"\nrepeat 0 { op x { duration: 1m } }").unwrap();
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn repeat_requires_count() {
        assert!(parse("assay \"t\"\nrepeat { op x { duration: 1m } }").is_err());
    }

    #[test]
    fn nested_repeat_is_rejected() {
        let text = "assay \"t\"\nrepeat 2 { repeat 2 { op x { duration: 1m } } }";
        assert!(parse(text).is_err());
    }

    #[test]
    fn round_trip_sample() {
        let a = parse(SAMPLE).unwrap();
        let text = to_text(&a);
        let b = parse(&text).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(
            a.dependencies().collect::<Vec<_>>(),
            b.dependencies().collect::<Vec<_>>()
        );
        for (id, op) in a.iter() {
            let op2 = b.op(id);
            assert_eq!(op.requirements(), op2.requirements());
            assert_eq!(op.duration(), op2.duration());
            assert_eq!(op.name(), op2.name());
        }
    }

    #[test]
    fn string_escapes_lex() {
        let a = parse(
            r#"assay "a \"b\" \\ c"
op x "tab\there" { duration: 1m }"#,
        )
        .unwrap();
        assert_eq!(a.name(), "a \"b\" \\ c");
        assert_eq!(a.op(OpId(0)).name(), "tab\there");
    }

    #[test]
    fn unknown_escape_is_an_error() {
        let e = parse("assay \"x\"\nop a \"bad \\q\" { duration: 1m }").unwrap_err();
        assert!(e.message.contains("\\q"), "{e}");
    }

    #[test]
    fn round_trip_quoted_names() {
        // Names with embedded quotes/backslashes (constructible via the
        // API, e.g. `mfhls-core::export`'s demo assay) must survive
        // to_text → parse. Before the lexer learned escapes, the quote in
        // `mix "A"` terminated the string early and re-parsing failed.
        let mut a = Assay::new("tricky \"names\"");
        let m = a.add_op(Operation::new("mix \"A\"").with_duration(Duration::fixed(3)));
        let d = a.add_op(Operation::new("back\\slash\nnewline").with_duration(Duration::fixed(2)));
        a.add_dependency(m, d).unwrap();
        let b = parse(&to_text(&a)).unwrap();
        assert_eq!(b.name(), a.name());
        for (id, op) in a.iter() {
            assert_eq!(b.op(id).name(), op.name());
            assert_eq!(b.op(id).duration(), op.duration());
        }
        assert_eq!(
            a.dependencies().collect::<Vec<_>>(),
            b.dependencies().collect::<Vec<_>>()
        );
    }

    #[test]
    fn round_trip_duplicate_display_names() {
        // `parse` rejects duplicate display names, so `to_text` must
        // disambiguate them deterministically; structure round-trips
        // unchanged.
        let mut a = Assay::new("dups");
        let x = a.add_op(Operation::new("mix").with_duration(Duration::fixed(3)));
        let y = a.add_op(Operation::new("mix").with_duration(Duration::fixed(5)));
        // An adversarial pre-existing name equal to the disambiguation of
        // op 1 forces a second suffix round.
        a.add_op(Operation::new("mix (o1)").with_duration(Duration::fixed(7)));
        a.add_dependency(x, y).unwrap();
        let text = to_text(&a);
        assert_eq!(text, to_text(&a), "deterministic output");
        let b = parse(&text).unwrap();
        assert_eq!(b.len(), a.len());
        assert_eq!(b.op(OpId(0)).name(), "mix");
        for (id, op) in a.iter() {
            assert_eq!(b.op(id).requirements(), op.requirements());
            assert_eq!(b.op(id).duration(), op.duration());
        }
        assert_eq!(
            a.dependencies().collect::<Vec<_>>(),
            b.dependencies().collect::<Vec<_>>()
        );
    }

    #[test]
    fn round_trip_benchmarks() {
        // The benchmark generators produce names with spaces/parentheses;
        // the quoted-name syntax must carry them.
        for (case, _, a) in mfhls_assays::benchmarks() {
            let text = to_text(&a);
            let b = parse(&text).unwrap_or_else(|e| panic!("case {case}: {e}"));
            assert_eq!(a.len(), b.len());
            assert_eq!(
                a.dependencies().collect::<Vec<_>>(),
                b.dependencies().collect::<Vec<_>>(),
                "case {case}"
            );
        }
    }
}
