//! Integration tests of the batched synthesis service (`mfhls-svc`).
//!
//! The service's determinism contract extends the workspace-wide one
//! pinned in `tests/determinism.rs`: NDJSON responses must be
//! **byte-identical** at any worker count, at any shard count, with the
//! window pipeline on or off, and with the shared cross-request layer
//! cache on or off — because the cache is a pure accelerator, shard
//! results merge in admission order, and windows flow through the
//! pipeline in FIFO order. These tests drive a large in-flight window
//! (the ≥64-request acceptance criterion), the full shards × workers ×
//! pipelining matrix, typed rejection paths, the cache eviction bound,
//! and the observability counters.

use mfhls::svc::{Json, ServiceConfig, ServiceSummary, SynthesisService, VERSION};
use std::io::BufReader;

/// A small synthetic protocol: `ops` operations in a dependency chain
/// with varied containers/accessories, every third duration
/// indeterminate (`>=`) so hybrid scheduling and re-synthesis actually
/// run. `seed` varies names and durations so distinct requests produce
/// distinct cache keys.
fn dsl(seed: usize, ops: usize) -> String {
    let mut s = format!("assay \"svc {seed}\"\n");
    for k in 0..ops {
        let dur = 2 + (seed + k) % 5;
        let extras = match k % 4 {
            0 => "container: chamber capacity: medium accessories: [pump]",
            1 => "accessories: [sieve-valve]",
            2 => "container: ring accessories: [heating-pad]",
            _ => "accessories: [optical-system]",
        };
        let duration = if k % 3 == 2 {
            format!("duration: >= {dur}m")
        } else {
            format!("duration: {dur}m")
        };
        let after = if k == 0 {
            String::new()
        } else {
            format!(" after: [s{}]", k - 1)
        };
        s.push_str(&format!("op s{k} {{ {extras} {duration}{after} }}\n"));
    }
    s
}

/// Builds one `synthesize` request line; `extra` appends fields such as
/// `"artifacts"` or `"config"` (JSON escaping handled by [`Json::write`]).
fn request(id: &str, seed: usize, ops: usize, extra: Vec<(&str, Json)>) -> String {
    let mut fields = vec![
        ("version".to_owned(), Json::Str(VERSION.to_owned())),
        ("type".to_owned(), Json::Str("synthesize".to_owned())),
        ("id".to_owned(), Json::Str(id.to_owned())),
        (
            "assay".to_owned(),
            Json::Object(vec![("dsl".to_owned(), Json::Str(dsl(seed, ops)))]),
        ),
    ];
    for (k, v) in extra {
        fields.push((k.to_owned(), v));
    }
    let mut line = String::new();
    Json::Object(fields).write(&mut line);
    line
}

fn serve(config: ServiceConfig, input: &str) -> (String, ServiceSummary) {
    let service = SynthesisService::new(config);
    let mut out = Vec::new();
    let summary = service
        .serve(BufReader::new(input.as_bytes()), &mut out)
        .expect("in-memory serve cannot fail");
    (
        String::from_utf8(out).expect("responses are UTF-8"),
        summary,
    )
}

/// One window holding 64 varied requests (sizes 1..=6 ops, schedule and
/// trace artifacts sprinkled in, a few explicit solver overrides),
/// flushed by a blank line.
fn batch_of_64() -> String {
    let mut input = String::new();
    for i in 0..64 {
        let ops = 1 + i % 6;
        let mut extra = Vec::new();
        if i % 8 == 0 {
            extra.push((
                "artifacts",
                Json::Array(vec![
                    Json::Str("stats".to_owned()),
                    Json::Str("schedule".to_owned()),
                    Json::Str("trace".to_owned()),
                ]),
            ));
        }
        if i % 16 == 5 {
            extra.push((
                "config",
                Json::Object(vec![
                    ("solver".to_owned(), Json::Str("ilp".to_owned())),
                    ("max_devices".to_owned(), Json::Int(8)),
                ]),
            ));
        }
        input.push_str(&request(&format!("r{i:02}"), i, ops, extra));
        input.push('\n');
    }
    input.push('\n'); // close the window
    input
}

#[test]
fn sixty_four_in_flight_requests_are_byte_identical_at_1_and_4_workers() {
    let input = batch_of_64();
    let at = |workers: usize| {
        serve(
            ServiceConfig {
                workers,
                ..ServiceConfig::default()
            },
            &input,
        )
    };
    let (out_1, summary_1) = at(1);
    let (out_4, summary_4) = at(4);
    assert_eq!(
        out_1, out_4,
        "service responses differ between 1 and 4 workers"
    );
    assert_eq!(summary_1.solved, 64);
    assert_eq!(summary_1.rejected, 0);
    assert_eq!(summary_4.solved, 64);

    // Responses come back in admission order, every one solved.
    let lines: Vec<Json> = out_1.lines().map(|l| Json::parse(l).unwrap()).collect();
    assert_eq!(lines.len(), 64);
    for (i, line) in lines.iter().enumerate() {
        assert_eq!(
            line.get("id").and_then(Json::as_str),
            Some(format!("r{i:02}").as_str())
        );
        assert_eq!(line.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(line.get("version").and_then(Json::as_str), Some(VERSION));
    }
    // Requested artifacts are present; unrequested ones are absent.
    assert!(lines[0].get("schedule").is_some());
    assert!(lines[0].get("trace_fingerprint").is_some());
    assert!(lines[1].get("schedule").is_none());
}

#[test]
fn responses_are_identical_with_shared_cache_on_and_off() {
    // Two windows with repeated protocols: the second window replays the
    // first's assays, so the shared cache serves hits — which must not
    // change a single response byte.
    let mut input = String::new();
    for window in 0..2 {
        for i in 0..8 {
            input.push_str(&request(&format!("w{window}-{i}"), i, 1 + i % 4, vec![]));
            input.push('\n');
        }
        input.push('\n');
    }
    let (out_on, summary_on) = serve(
        ServiceConfig {
            shared_cache: true,
            ..ServiceConfig::default()
        },
        &input,
    );
    let (out_off, summary_off) = serve(
        ServiceConfig {
            shared_cache: false,
            ..ServiceConfig::default()
        },
        &input,
    );
    assert_eq!(out_on, out_off, "shared cache changed a response");
    assert!(
        summary_on.cache.hits > 0,
        "replayed window should hit the shared cache: {:?}",
        summary_on.cache
    );
    assert_eq!(
        summary_off.cache.hits + summary_off.cache.misses,
        0,
        "disabled shared cache must stay untouched: {:?}",
        summary_off.cache
    );
}

#[test]
fn eviction_bound_is_respected_across_requests() {
    let config = ServiceConfig {
        cache_entries: 4,
        ..ServiceConfig::default()
    };
    let service = SynthesisService::new(config);
    // 12 distinct protocols, one window each: far more layer solutions
    // than the bound allows.
    let mut input = String::new();
    for i in 0..12 {
        input.push_str(&request(&format!("d{i}"), 100 + i, 3, vec![]));
        input.push_str("\n\n");
    }
    let mut out = Vec::new();
    let summary = service
        .serve(BufReader::new(input.as_bytes()), &mut out)
        .expect("in-memory serve cannot fail");
    assert_eq!(summary.solved, 12);
    let stats = service.cache().stats();
    assert!(
        stats.entries <= 4,
        "bounded cache exceeded its capacity: {stats:?}"
    );
    assert!(
        stats.misses > 4,
        "distinct protocols should miss more often than the bound: {stats:?}"
    );
}

#[test]
fn cache_and_admission_counters_flow_through_obs() {
    // The service narrates itself through `mfhls-obs`: admission and
    // solve events in the logical class, cache movement as diagnostics.
    let input = format!(
        "{r}\n\n{r2}\n\n",
        r = request("first", 7, 4, vec![]),
        r2 = request("second", 7, 4, vec![])
    );
    mfhls::obs::start_capture(mfhls::obs::CaptureConfig::default());
    let (_, summary) = serve(ServiceConfig::default(), &input);
    let trace = mfhls::obs::finish_capture().expect("capture was active");
    let jsonl = trace.to_jsonl();
    for name in [
        "svc.request_accepted",
        "svc.batch_flush",
        "svc.request_solved",
        "svc.cache_hits",
        "svc.cache_misses",
    ] {
        assert!(jsonl.contains(name), "trace is missing '{name}'");
    }
    // The identical second request replayed the first's layer solutions;
    // counters aggregate into one record per name at capture end, and
    // the hit total agrees with the summary.
    assert!(summary.cache.hits > 0, "{:?}", summary.cache);
    let hit_lines: Vec<&str> = jsonl
        .lines()
        .filter(|l| l.contains("svc.cache_hits"))
        .collect();
    assert_eq!(hit_lines.len(), 1, "one aggregated record per counter");
    let record = mfhls::svc::Json::parse(hit_lines[0]).expect("counter record is JSON");
    let total = record
        .get("fields")
        .and_then(|f| f.get("total"))
        .and_then(mfhls::svc::Json::as_i64)
        .expect("counter record carries a total");
    assert_eq!(total, summary.cache.hits as i64);
}

#[test]
fn rejection_paths_are_typed_and_worker_invariant() {
    // One window over capacity, one malformed line, one unsupported
    // version, one zero deadline, one cancel: every rejection is typed,
    // and the whole stream is byte-identical at any worker count.
    let mut input = String::new();
    for i in 0..4 {
        let extra = if i == 3 {
            vec![("deadline_ms", Json::Int(0))]
        } else {
            vec![]
        };
        input.push_str(&request(&format!("q{i}"), i, 1, extra));
        input.push('\n');
    }
    input.push_str("not json at all\n");
    input.push_str(
        r#"{"version":"mfhls-api/v9","type":"synthesize","id":"vx","assay":{"dsl":"x"}}"#,
    );
    input.push('\n');
    input.push_str(r#"{"type":"cancel","id":"q2"}"#);
    input.push('\n');
    // A fifth synthesize request overflows the 4-slot window.
    input.push_str(&request("q4", 4, 1, vec![]));
    input.push('\n');
    input.push('\n');
    let at = |workers: usize| {
        serve(
            ServiceConfig {
                workers,
                queue_capacity: 4,
                ..ServiceConfig::default()
            },
            &input,
        )
    };
    let (out_1, summary) = at(1);
    let (out_4, _) = at(4);
    assert_eq!(out_1, out_4, "rejections differ between 1 and 4 workers");

    let kinds: Vec<(Option<String>, Option<String>)> = out_1
        .lines()
        .map(|l| {
            let v = Json::parse(l).unwrap();
            (
                v.get("id").and_then(Json::as_str).map(str::to_owned),
                v.get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str)
                    .map(str::to_owned),
            )
        })
        .collect();
    // Admission-time failures come first (in input order), then the
    // flushed batch in admission order.
    assert_eq!(kinds.len(), 7);
    assert_eq!(kinds[0], (None, Some("malformed_request".to_owned())));
    assert_eq!(
        kinds[1],
        (
            Some("vx".to_owned()),
            Some("unsupported_version".to_owned())
        )
    );
    assert_eq!(
        kinds[2],
        (Some("q4".to_owned()), Some("overloaded".to_owned()))
    );
    assert_eq!(kinds[3], (Some("q0".to_owned()), None));
    assert_eq!(kinds[4], (Some("q1".to_owned()), None));
    assert_eq!(
        kinds[5],
        (Some("q2".to_owned()), Some("cancelled".to_owned()))
    );
    assert_eq!(
        kinds[6],
        (Some("q3".to_owned()), Some("deadline_exceeded".to_owned()))
    );
    assert_eq!(summary.rejected, 5);
    assert_eq!(summary.cancelled, 1);
    assert_eq!(summary.solved, 2);
}

#[test]
fn response_stream_is_byte_identical_across_shard_worker_pipeline_matrix() {
    // The acceptance matrix of the sharded, pipelined serve plane:
    // --shards {1,2,4} × --workers {0,1,4} × pipelining on/off must all
    // produce the same bytes. Three windows of mixed traffic (varied
    // protocols, artifacts, a malformed line, a cancel, a zero deadline)
    // so shard routing, solve-time rejections, and the window pipeline
    // all engage.
    let mut input = String::new();
    for window in 0..3 {
        for i in 0..8 {
            let mut extra = Vec::new();
            if i % 4 == 1 {
                extra.push((
                    "artifacts",
                    Json::Array(vec![
                        Json::Str("stats".to_owned()),
                        Json::Str("schedule".to_owned()),
                    ]),
                ));
            }
            if window == 2 && i == 6 {
                extra.push(("deadline_ms", Json::Int(0)));
            }
            input.push_str(&request(
                &format!("w{window}r{i}"),
                window * 8 + i,
                1 + i % 4,
                extra,
            ));
            input.push('\n');
        }
        if window == 0 {
            input.push_str("definitely not json\n");
        }
        if window == 1 {
            input.push_str("{\"type\":\"cancel\",\"id\":\"w1r3\"}\n");
        }
        input.push('\n');
    }
    let mut baseline: Option<(String, u64)> = None;
    for shards in [1usize, 2, 4] {
        for workers in [0usize, 1, 4] {
            for pipeline_windows in [1usize, 2] {
                let (out, summary) = serve(
                    ServiceConfig {
                        shards,
                        workers,
                        pipeline_windows,
                        ..ServiceConfig::default()
                    },
                    &input,
                );
                assert_eq!(summary.batches, 3);
                match &baseline {
                    None => baseline = Some((out, summary.solved)),
                    Some((bytes, solved)) => {
                        assert_eq!(
                            &out, bytes,
                            "stream diverged at shards={shards} workers={workers} \
                             pipeline_windows={pipeline_windows}"
                        );
                        assert_eq!(summary.solved, *solved);
                    }
                }
                // Every request is accounted to exactly one shard.
                let routed: u64 = summary.shards.iter().map(|s| s.requests).sum();
                assert_eq!(routed, summary.solved + (summary.rejected - 1)); // -1: the malformed line never reaches a shard
            }
        }
    }
}

#[test]
fn oversized_assay_is_rejected_at_admission() {
    let input = format!(
        "{}\n\n",
        request("big", 0, 9, vec![]) // 9 ops > max_ops 8
    );
    let (out, summary) = serve(
        ServiceConfig {
            max_ops: 8,
            ..ServiceConfig::default()
        },
        &input,
    );
    let v = Json::parse(out.lines().next().unwrap()).unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("parse_error")
    );
    assert_eq!(summary.rejected, 1);
    assert_eq!(summary.accepted, 0);
}

/// `mfhls-netlist/v1` ingestion end to end: a well-formed netlist source
/// solves exactly like its DSL twin, and each malformed shape is rejected
/// with a typed `parse_error` naming the offending field.
#[test]
fn netlist_sources_solve_and_reject_with_field_names() {
    let netlist_request = |id: &str, body: &str| {
        format!(
            r#"{{"version":"{VERSION}","type":"synthesize","id":"{id}","assay":{{"netlist":{body}}}}}"#
        )
    };
    let good = r#"{"version":"mfhls-netlist/v1","name":"net","ops":[
        {"id":0,"name":"mix","duration":{"fixed":3}},
        {"id":1,"name":"detect","accessories":["optical-system"],"duration":{"min":2}}],
        "edges":[[0,1]]}"#
        .replace(['\n', ' '], " ");
    let bad_kind = r#"{"version":"mfhls-netlist/v1","ops":[
        {"id":0,"container":"tube","duration":{"fixed":3}}],"edges":[]}"#
        .replace(['\n', ' '], " ");
    let dangling = r#"{"version":"mfhls-netlist/v1","ops":[
        {"id":0,"duration":{"fixed":3}}],"edges":[[0,4]]}"#
        .replace(['\n', ' '], " ");
    let oversized = r#"{"version":"mfhls-netlist/v1","ops":[
        {"id":0,"duration":{"fixed":1}},{"id":1,"duration":{"fixed":1}},
        {"id":2,"duration":{"fixed":1}}],"edges":[]}"#
        .replace(['\n', ' '], " ");
    let input = format!(
        "{}\n{}\n{}\n{}\n\n",
        netlist_request("good", &good),
        netlist_request("kind", &bad_kind),
        netlist_request("edge", &dangling),
        netlist_request("size", &oversized),
    );
    let (out, summary) = serve(
        ServiceConfig {
            max_ops: 2,
            ..ServiceConfig::default()
        },
        &input,
    );
    assert_eq!(summary.solved, 1);
    assert_eq!(summary.rejected, 3);

    let mut by_id = std::collections::HashMap::new();
    for line in out.lines() {
        let v = Json::parse(line).unwrap();
        let id = v.get("id").and_then(Json::as_str).unwrap().to_owned();
        by_id.insert(id, v);
    }
    assert_eq!(
        by_id["good"].get("status").and_then(Json::as_str),
        Some("ok")
    );
    for (id, field) in [
        ("kind", ".container: unknown kind 'tube'"),
        ("edge", "netlist.edges[0][1]: op index 4 is dangling"),
        (
            "size",
            "netlist.ops: defines 3 operations, exceeding the limit of 2",
        ),
    ] {
        let err = by_id[id].get("error").expect("typed rejection");
        assert_eq!(
            err.get("kind").and_then(Json::as_str),
            Some("parse_error"),
            "{id}"
        );
        let msg = err.get("message").and_then(Json::as_str).unwrap();
        assert!(msg.contains(field), "{id}: {msg}");
    }
}

#[test]
fn trace_artifact_fingerprint_is_worker_invariant() {
    // The per-request `trace` artifact is the logical fingerprint of the
    // request's own synthesis — invariant by the mfhls-obs contract, so
    // it is safe to include in byte-compared responses.
    let input = format!(
        "{}\n\n",
        request(
            "tr",
            3,
            5,
            vec![(
                "artifacts",
                Json::Array(vec![
                    Json::Str("stats".to_owned()),
                    Json::Str("trace".to_owned()),
                ])
            )]
        )
    );
    let fp = |workers: usize| {
        let (out, _) = serve(
            ServiceConfig {
                workers,
                ..ServiceConfig::default()
            },
            &input,
        );
        let v = Json::parse(out.lines().next().unwrap()).unwrap();
        v.get("trace_fingerprint")
            .and_then(Json::as_str)
            .expect("trace artifact present")
            .to_owned()
    };
    let fp_1 = fp(1);
    assert!(fp_1.contains("layer_solved"), "{fp_1}");
    assert_eq!(fp_1, fp(4));
}
