//! Activity-based presolve: bound tightening and infeasibility detection.
//!
//! For every constraint `Σ a_j x_j ⋛ b` the minimum/maximum *activity*
//! implied by the current bounds yields implied bounds on each participating
//! variable; for integer variables the implied bounds are rounded inwards.
//! Iterated to a fixpoint (or a round limit), this shrinks the search box
//! before branch-and-bound starts and catches trivially infeasible models.

use crate::model::{Model, Sense, VarKind};

/// Result of [`tighten_bounds`].
#[derive(Debug, Clone, PartialEq)]
pub enum PresolveOutcome {
    /// Possibly tightened bounds, same indexing as the model's variables.
    Feasible {
        /// Tightened lower bounds.
        lb: Vec<f64>,
        /// Tightened upper bounds.
        ub: Vec<f64>,
    },
    /// The model was proven infeasible from bounds alone.
    Infeasible,
}

const EPS: f64 = 1e-9;

/// Tightens variable bounds by constraint-activity propagation, running at
/// most `max_rounds` sweeps.
///
/// # Example
///
/// ```
/// use mfhls_ilp::{Model, Sense};
/// use mfhls_ilp::presolve::{tighten_bounds, PresolveOutcome};
///
/// let mut m = Model::minimize();
/// let x = m.integer("x", 0.0, 100.0);
/// let y = m.integer("y", 0.0, 100.0);
/// m.add_con(x + y, Sense::Le, 5.0);
/// match tighten_bounds(&m, 4) {
///     PresolveOutcome::Feasible { ub, .. } => {
///         assert_eq!(ub[x.index()], 5.0);
///         assert_eq!(ub[y.index()], 5.0);
///     }
///     PresolveOutcome::Infeasible => unreachable!(),
/// }
/// ```
pub fn tighten_bounds(model: &Model, max_rounds: usize) -> PresolveOutcome {
    let n = model.num_vars();
    let mut lb: Vec<f64> = model.vars().iter().map(|v| v.lb).collect();
    let mut ub: Vec<f64> = model.vars().iter().map(|v| v.ub).collect();
    let integer: Vec<bool> = model
        .vars()
        .iter()
        .map(|v| matches!(v.kind, VarKind::Integer | VarKind::Binary))
        .collect();

    for _ in 0..max_rounds {
        let mut changed = false;
        for con in model.cons() {
            // Treat == as both <= and >=.
            let senses: &[Sense] = match con.sense {
                Sense::Le => &[Sense::Le],
                Sense::Ge => &[Sense::Ge],
                Sense::Eq => &[Sense::Le, Sense::Ge],
            };
            for &s in senses {
                // Normalise to `Σ a_j x_j <= b`.
                let sign = if s == Sense::Ge { -1.0 } else { 1.0 };
                let b = sign * con.rhs;
                // Min activity of the whole row.
                let mut min_act = 0.0;
                for (v, c0) in con.expr.terms() {
                    let c = sign * c0;
                    min_act += if c > 0.0 {
                        c * lb[v.index()]
                    } else {
                        c * ub[v.index()]
                    };
                }
                if min_act > b + 1e-7 {
                    return PresolveOutcome::Infeasible;
                }
                for (v, c0) in con.expr.terms() {
                    let j = v.index();
                    let c = sign * c0;
                    if c.abs() < EPS {
                        continue;
                    }
                    // Residual min activity excluding x_j.
                    let own_min = if c > 0.0 { c * lb[j] } else { c * ub[j] };
                    let rest = min_act - own_min;
                    if c > 0.0 {
                        // c x_j <= b - rest
                        let mut new_ub = (b - rest) / c;
                        if integer[j] {
                            new_ub = (new_ub + 1e-9).floor();
                        }
                        if new_ub < ub[j] - EPS {
                            ub[j] = new_ub;
                            changed = true;
                        }
                    } else {
                        // c x_j <= b - rest, c < 0 -> x_j >= (b - rest)/c
                        let mut new_lb = (b - rest) / c;
                        if integer[j] {
                            new_lb = (new_lb - 1e-9).ceil();
                        }
                        if new_lb > lb[j] + EPS {
                            lb[j] = new_lb;
                            changed = true;
                        }
                    }
                    if lb[j] > ub[j] + 1e-9 {
                        return PresolveOutcome::Infeasible;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Guard against numerically crossed bounds.
    for j in 0..n {
        if lb[j] > ub[j] {
            if lb[j] - ub[j] < 1e-7 {
                lb[j] = ub[j];
            } else {
                return PresolveOutcome::Infeasible;
            }
        }
    }
    PresolveOutcome::Feasible { lb, ub }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;

    fn bounds(m: &Model) -> (Vec<f64>, Vec<f64>) {
        match tighten_bounds(m, 10) {
            PresolveOutcome::Feasible { lb, ub } => (lb, ub),
            PresolveOutcome::Infeasible => panic!("unexpected infeasible"),
        }
    }

    #[test]
    fn tightens_sum_constraint() {
        let mut m = Model::minimize();
        let x = m.integer("x", 0.0, 100.0);
        let y = m.integer("y", 0.0, 100.0);
        m.add_con(x + y, Sense::Le, 7.0);
        let (_, ub) = bounds(&m);
        assert_eq!(ub[x.index()], 7.0);
        assert_eq!(ub[y.index()], 7.0);
    }

    #[test]
    fn tightens_through_negative_coeff() {
        let mut m = Model::minimize();
        let x = m.integer("x", 0.0, 100.0);
        let y = m.integer("y", 0.0, 10.0);
        // x - y <= 0  =>  x <= 10.
        m.add_con(x - y, Sense::Le, 0.0);
        let (_, ub) = bounds(&m);
        assert_eq!(ub[x.index()], 10.0);
    }

    #[test]
    fn ge_constraint_raises_lower_bound() {
        let mut m = Model::minimize();
        let x = m.integer("x", 0.0, 100.0);
        m.add_con(1.0 * x, Sense::Ge, 3.0);
        let (lb, _) = bounds(&m);
        assert_eq!(lb[x.index()], 3.0);
    }

    #[test]
    fn equality_tightens_both_sides() {
        let mut m = Model::minimize();
        let x = m.integer("x", 0.0, 100.0);
        let y = m.integer("y", 2.0, 2.0);
        m.add_con(x + y, Sense::Eq, 6.0);
        let (lb, ub) = bounds(&m);
        assert_eq!(lb[x.index()], 4.0);
        assert_eq!(ub[x.index()], 4.0);
    }

    #[test]
    fn integer_rounding_applied() {
        let mut m = Model::minimize();
        let x = m.integer("x", 0.0, 100.0);
        // 2x <= 7 => x <= 3 (rounded from 3.5).
        m.add_con(2.0 * x, Sense::Le, 7.0);
        let (_, ub) = bounds(&m);
        assert_eq!(ub[x.index()], 3.0);
    }

    #[test]
    fn detects_bound_infeasibility() {
        let mut m = Model::minimize();
        let x = m.integer("x", 0.0, 1.0);
        m.add_con(1.0 * x, Sense::Ge, 5.0);
        assert_eq!(tighten_bounds(&m, 10), PresolveOutcome::Infeasible);
    }

    #[test]
    fn fixpoint_chain_propagation() {
        let mut m = Model::minimize();
        let x = m.integer("x", 0.0, 100.0);
        let y = m.integer("y", 0.0, 100.0);
        let z = m.integer("z", 0.0, 100.0);
        m.add_con(1.0 * x, Sense::Le, 4.0);
        m.add_con(y - x, Sense::Le, 0.0); // y <= x <= 4
        m.add_con(z - y, Sense::Le, 0.0); // z <= y <= 4
        let (_, ub) = bounds(&m);
        assert_eq!(ub[y.index()], 4.0);
        assert_eq!(ub[z.index()], 4.0);
    }

    #[test]
    fn continuous_bounds_not_rounded() {
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0, 100.0);
        m.add_con(2.0 * x, Sense::Le, 7.0);
        let (_, ub) = bounds(&m);
        assert!((ub[x.index()] - 3.5).abs() < 1e-9);
    }
}
