//! Component-oriented high-level synthesis for continuous-flow microfluidic
//! biochips with hybrid scheduling.
//!
//! This crate is the primary contribution of the DAC'17 paper this workspace
//! reproduces. Given a bioassay described as a DAG of component-oriented
//! operations (container + accessory [`Requirements`](mfhls_chip::Requirements),
//! fixed or *indeterminate* durations), it produces a **hybrid schedule**: a
//! sequence of per-layer sub-schedules where every indeterminate operation
//! sits at the end of its layer, so cyberphysical (real-time) termination
//! control is needed only at layer boundaries.
//!
//! Pipeline (paper section in parentheses):
//!
//! 1. [`layering`] — split the assay into layers (§3.1, Algorithm 1:
//!    dependency-based allocation + min-cut resource-based eviction).
//! 2. [`solver`] — per-layer scheduling & binding, via the faithful ILP
//!    model ([`ilp_model`], §4) and/or a scalable list-scheduling heuristic
//!    ([`heuristic`]).
//! 3. [`synth`] — the driver: device inheritance across layers, progressive
//!    re-synthesis (§3.2), transport-time refinement ([`transport`], §4.1).
//! 4. [`conventional`] — the *modified conventional* baseline of §5
//!    (signature-class matching) used for Table 2 comparisons.
//! 5. [`validate`] — checks every paper constraint on a produced schedule;
//!    used pervasively by tests and after each solver call.
//!
//! # Quickstart
//!
//! ```
//! use mfhls_chip::{Accessory, ContainerKind, Capacity};
//! use mfhls_core::{Assay, Duration, Operation, SynthConfig, Synthesizer};
//!
//! let mut assay = Assay::new("demo");
//! let mix = assay.add_op(
//!     Operation::new("mix")
//!         .container(ContainerKind::Ring)
//!         .capacity(Capacity::Medium)
//!         .accessory(Accessory::Pump)
//!         .with_duration(Duration::fixed(10)),
//! );
//! let detect = assay.add_op(
//!     Operation::new("detect")
//!         .accessory(Accessory::OpticalSystem)
//!         .with_duration(Duration::fixed(5)),
//! );
//! assay.add_dependency(mix, detect)?;
//!
//! let result = Synthesizer::new(SynthConfig::default()).run(&assay)?;
//! assert!(result.schedule.validate(&assay).is_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Fallible paths must surface `CoreError`, not panic. Test code (compiled
// with the `test` cfg for the whole crate) may still unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod analysis;
mod assay;
pub mod cache;
pub mod conventional;
pub mod delta;
pub mod export;
pub mod heuristic;
pub mod ilp_model;
pub mod layering;
mod op;
mod problem;
pub mod recovery;
pub mod render;
mod schedule;
pub mod sdc_model;
pub mod solver;
pub mod synth;
pub mod transport;
pub mod validate;

pub use assay::Assay;
pub use cache::{
    structural_op_colours, CacheBacking, CacheContext, CacheCounters, CacheStats,
    CanonicalLayerKey, HitClass, LayerCache, LayerKey, LayerKeyParts, RunCache, SharedLayerCache,
};
pub use delta::{AssayShape, DeltaCache, DeltaStats};
pub use layering::{layer_assay, Layering};
pub use op::{Duration, OpId, Operation};
pub use problem::{LayerProblem, Weights};
pub use recovery::{resynthesize_suffix, Degradation, RecoveryPlan, RetryPolicy};
pub use schedule::{ExecTime, HybridSchedule, LayerSchedule, ScheduledOp};
pub use sdc_model::{skeleton_makespan, SdcLayerSolver};
pub use solver::{
    LayerSolution, LayerSolver, SolverKind, SolverStats, PORTFOLIO_ILP_OP_LIMIT,
    PORTFOLIO_ILP_PIVOT_WORK,
};
pub use synth::{IterationStats, SynthConfig, SynthConfigBuilder, SynthesisResult, Synthesizer};
pub use transport::{Progression, TransportConfig, TransportTimes};

/// Errors produced by the synthesis pipeline.
///
/// `#[non_exhaustive]`: downstream matches need a wildcard arm so future
/// variants are not breaking changes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration failed validation (see
    /// [`SynthConfig::validate`]).
    Config(String),
    /// The assay dependency graph is cyclic.
    CyclicAssay,
    /// An operation id does not belong to the assay.
    UnknownOp(usize),
    /// An indeterminate operation has a child in the same layer, or another
    /// structural layering invariant failed.
    Layering(String),
    /// No device can satisfy an operation's requirements within the device
    /// budget.
    DeviceBudgetExhausted {
        /// Operation that could not be bound.
        op: usize,
        /// Configured maximum number of devices.
        max_devices: usize,
    },
    /// The exact solver failed (propagated from `mfhls-ilp`).
    Ilp(String),
    /// A produced schedule violated a paper constraint (validator message).
    InvalidSchedule(String),
    /// An internal pipeline invariant failed — always a bug, but surfaced
    /// as an error so callers (the CLI, the recovery loop) degrade
    /// gracefully instead of unwinding.
    Internal(String),
    /// Recovery re-synthesis could not produce a usable suffix schedule.
    Recovery(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Config(m) => write!(f, "invalid configuration: {m}"),
            CoreError::CyclicAssay => write!(f, "assay dependency graph contains a cycle"),
            CoreError::UnknownOp(i) => write!(f, "unknown operation id {i}"),
            CoreError::Layering(m) => write!(f, "layering failed: {m}"),
            CoreError::DeviceBudgetExhausted { op, max_devices } => write!(
                f,
                "operation {op} cannot be bound within the budget of {max_devices} devices"
            ),
            CoreError::Ilp(m) => write!(f, "ilp solver: {m}"),
            CoreError::InvalidSchedule(m) => write!(f, "invalid schedule: {m}"),
            CoreError::Internal(m) => write!(f, "internal invariant violated: {m}"),
            CoreError::Recovery(m) => write!(f, "recovery failed: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}
