//! Structured solver selection — one registry behind every surface.
//!
//! The CLI's `--solver` flag, the `mfhls-api/v1` `config.solver` field,
//! help text, error messages and the diagnostics echo all resolve through
//! this module, so a new backend added to [`BACKENDS`] appears everywhere
//! at once and the listed names can never drift apart.
//!
//! Two equivalent surfaces map onto [`SolverKind`]:
//!
//! * **Flag syntax** ([`parse_spec`]): `name`, `name:field=value,...`, or
//!   `portfolio:leg+leg+leg` — e.g. `sdc`, `hybrid:max_nodes=20000`,
//!   `portfolio:heuristic+sdc+ilp`.
//! * **JSON** ([`spec_from_json`]): a bare string in flag syntax (the
//!   pre-0.11 compatible form), or a structured object such as
//!   `{"kind": "portfolio", "backends": [{"kind": "ilp", "max_nodes":
//!   20000}, "sdc"]}`.
//!
//! [`spec_json`] is the inverse: the fully-resolved spec (defaults filled
//! in) as a structured object, echoed in response diagnostics so clients
//! can see exactly which strategy served them.

use crate::json::{obj, Json};
use mfhls_core::SolverKind;

/// One registered solver backend: its wire name, accepted fields, and a
/// one-line summary for help text.
#[derive(Debug, Clone, Copy)]
pub struct BackendInfo {
    /// The name used in flag syntax and the JSON `kind` field.
    pub name: &'static str,
    /// Fields accepted in `name:field=value,...` / the JSON object form.
    pub fields: &'static [&'static str],
    /// One-line description for `--help`-style listings.
    pub summary: &'static str,
}

/// The solver backend registry. Error messages and help text derive the
/// listed names from here — extend this table and every surface follows.
pub const BACKENDS: &[BackendInfo] = &[
    BackendInfo {
        name: "heuristic",
        fields: &["improvement_passes"],
        summary: "priority-list scheduling + greedy binding + re-binding passes",
    },
    BackendInfo {
        name: "sdc",
        fields: &["improvement_passes"],
        summary: "incremental difference-constraint skeleton + binding legalization",
    },
    BackendInfo {
        name: "ilp",
        fields: &["max_nodes"],
        summary: "exact MILP model of the paper, branch-and-bound",
    },
    BackendInfo {
        name: "hybrid",
        fields: &["max_nodes", "ilp_op_limit", "improvement_passes"],
        summary: "heuristic first, bounded exact attempt on small layers",
    },
    BackendInfo {
        name: "portfolio",
        fields: &[],
        summary: "race '+'-separated leaf backends, adopt the best deterministically",
    },
];

/// Node budget of an `ilp` leg *inside a portfolio*: the exact search is
/// already warm-bounded by the best cheap result (`cutoff`), so a small
/// budget keeps the race cheap while still closing most optimality gaps.
pub const PORTFOLIO_ILP_MAX_NODES: usize = 20_000;

/// `heuristic|sdc|ilp|hybrid|portfolio` — derived from [`BACKENDS`].
pub fn backend_names() -> String {
    BACKENDS
        .iter()
        .map(|b| b.name)
        .collect::<Vec<_>>()
        .join("|")
}

fn info_of(name: &str) -> Result<&'static BackendInfo, String> {
    BACKENDS
        .iter()
        .find(|b| b.name == name)
        .ok_or_else(|| format!("unknown solver '{name}' ({})", backend_names()))
}

/// The default strategy of each registered backend (what a bare name
/// resolves to).
fn default_of(name: &str) -> Result<SolverKind, String> {
    Ok(match info_of(name)?.name {
        "heuristic" => SolverKind::default(),
        "sdc" => SolverKind::Sdc {
            improvement_passes: 2,
        },
        "ilp" => SolverKind::Ilp { max_nodes: 500_000 },
        "hybrid" => SolverKind::Hybrid {
            max_nodes: 200_000,
            ilp_op_limit: 8,
            improvement_passes: 2,
        },
        "portfolio" => SolverKind::Portfolio {
            backends: vec![
                SolverKind::Heuristic {
                    improvement_passes: 2,
                },
                SolverKind::Sdc {
                    improvement_passes: 2,
                },
                SolverKind::Ilp {
                    max_nodes: PORTFOLIO_ILP_MAX_NODES,
                },
            ],
        },
        _ => unreachable!("info_of returned an unregistered backend"),
    })
}

/// A leaf backend by name, with the defaults a portfolio leg gets (the
/// `ilp` leg uses the bounded [`PORTFOLIO_ILP_MAX_NODES`] budget).
fn portfolio_leg(name: &str) -> Result<SolverKind, String> {
    let info = info_of(name)?;
    let leg = match info.name {
        "ilp" => SolverKind::Ilp {
            max_nodes: PORTFOLIO_ILP_MAX_NODES,
        },
        _ => default_of(info.name)?,
    };
    if !leg.is_portfolio_leaf() {
        return Err(format!(
            "portfolio backend '{name}' must be a leaf strategy (heuristic|sdc|ilp)"
        ));
    }
    Ok(leg)
}

fn parse_usize(backend: &str, field: &str, raw: &str) -> Result<usize, String> {
    raw.parse::<usize>().map_err(|_| {
        format!("solver '{backend}': field '{field}' wants a non-negative integer, got '{raw}'")
    })
}

fn set_field(
    kind: &mut SolverKind,
    backend: &str,
    field: &str,
    value: usize,
) -> Result<(), String> {
    let fields = info_of(backend)?.fields;
    if !fields.contains(&field) {
        let listed = if fields.is_empty() {
            "no fields".to_owned()
        } else {
            fields.join("|")
        };
        return Err(format!(
            "solver '{backend}' has no field '{field}' ({listed})"
        ));
    }
    match (kind, field) {
        (SolverKind::Heuristic { improvement_passes }, "improvement_passes")
        | (SolverKind::Sdc { improvement_passes }, "improvement_passes")
        | (
            SolverKind::Hybrid {
                improvement_passes, ..
            },
            "improvement_passes",
        ) => *improvement_passes = value,
        (SolverKind::Ilp { max_nodes }, "max_nodes")
        | (SolverKind::Hybrid { max_nodes, .. }, "max_nodes") => *max_nodes = value,
        (SolverKind::Hybrid { ilp_op_limit, .. }, "ilp_op_limit") => *ilp_op_limit = value,
        _ => {
            return Err(format!(
                "solver '{backend}' has no field '{field}' ({})",
                fields.join("|")
            ))
        }
    }
    Ok(())
}

/// Parses the flag syntax (`--solver` and the JSON bare-string form):
/// `name`, `name:field=value,...`, or `portfolio:leg+leg+leg`.
///
/// # Errors
///
/// A targeted message naming the unknown solver (with the registered
/// names), the unknown field (with the backend's fields), or the
/// malformed value.
pub fn parse_spec(text: &str) -> Result<SolverKind, String> {
    let (name, args) = match text.split_once(':') {
        Some((n, a)) => (n.trim(), Some(a.trim())),
        None => (text.trim(), None),
    };
    let info = info_of(name)?;
    let Some(args) = args else {
        return default_of(name);
    };
    if args.is_empty() {
        return Err(format!("solver '{name}': empty argument list after ':'"));
    }
    if info.name == "portfolio" {
        if args.contains('=') {
            return Err("solver 'portfolio' takes '+'-separated backends (e.g. \
                 portfolio:heuristic+sdc+ilp), not field assignments"
                .to_owned());
        }
        let legs = args
            .split('+')
            .map(|leg| portfolio_leg(leg.trim()))
            .collect::<Result<Vec<_>, _>>()?;
        if legs.is_empty() {
            return Err("portfolio backend list is empty".to_owned());
        }
        return Ok(SolverKind::Portfolio { backends: legs });
    }
    let mut kind = default_of(name)?;
    for assign in args.split(',') {
        let Some((field, raw)) = assign.split_once('=') else {
            return Err(format!(
                "solver '{name}': expected field=value, got '{}'",
                assign.trim()
            ));
        };
        let field = field.trim();
        let value = parse_usize(name, field, raw.trim())?;
        set_field(&mut kind, name, field, value)?;
    }
    Ok(kind)
}

/// Resolves the `config.solver` JSON value: a bare string in flag syntax
/// (compatible with pre-0.11 clients), or a structured object with a
/// `kind` field, typed fields, and — for portfolios — a `backends` array
/// whose entries are themselves strings or objects.
///
/// # Errors
///
/// The same targeted messages as [`parse_spec`], plus shape errors for
/// non-string/non-object values and non-integer fields.
pub fn spec_from_json(value: &Json) -> Result<SolverKind, String> {
    if let Some(text) = value.as_str() {
        return parse_spec(text);
    }
    let Some(entries) = value.as_object() else {
        return Err(format!(
            "'solver' must be a string or an object with a 'kind' field ({})",
            backend_names()
        ));
    };
    let name = value.get("kind").and_then(Json::as_str).ok_or_else(|| {
        format!(
            "'solver' object wants a string 'kind' ({})",
            backend_names()
        )
    })?;
    let info = info_of(name)?;
    if info.name == "portfolio" {
        let mut legs = Vec::new();
        for (key, v) in entries {
            match key.as_str() {
                "kind" => {}
                "backends" => {
                    let items = v.as_array().ok_or_else(|| {
                        "solver 'portfolio': 'backends' must be an array".to_owned()
                    })?;
                    for item in items {
                        let leg = spec_from_json(item)?;
                        if !leg.is_portfolio_leaf() {
                            return Err(format!(
                                "portfolio backend '{}' must be a leaf strategy (heuristic|sdc|ilp)",
                                kind_name(&leg)
                            ));
                        }
                        legs.push(leg);
                    }
                }
                other => {
                    return Err(format!(
                        "solver 'portfolio' has no field '{other}' (backends)"
                    ))
                }
            }
        }
        if legs.is_empty() {
            // `{"kind": "portfolio"}` without backends = the default race.
            return default_of("portfolio");
        }
        return Ok(SolverKind::Portfolio { backends: legs });
    }
    let mut kind = default_of(info.name)?;
    for (key, v) in entries {
        if key == "kind" {
            continue;
        }
        let value = v
            .as_u64()
            .ok_or_else(|| format!("solver '{name}': field '{key}' wants a non-negative integer"))?
            as usize;
        set_field(&mut kind, name, key, value)?;
    }
    Ok(kind)
}

/// The registry name of a strategy.
pub fn kind_name(kind: &SolverKind) -> &'static str {
    match kind {
        SolverKind::Heuristic { .. } => "heuristic",
        SolverKind::Sdc { .. } => "sdc",
        SolverKind::Ilp { .. } => "ilp",
        SolverKind::Hybrid { .. } => "hybrid",
        SolverKind::Portfolio { .. } => "portfolio",
        // `SolverKind` is #[non_exhaustive]; a core-side variant this
        // registry does not know yet surfaces as "unknown" rather than
        // breaking the build.
        _ => "unknown",
    }
}

/// The fully-resolved spec as a structured JSON object (every field
/// explicit), as echoed in response diagnostics.
pub fn spec_json(kind: &SolverKind) -> Json {
    match kind {
        SolverKind::Heuristic { improvement_passes } => obj(vec![
            ("kind", Json::Str("heuristic".to_owned())),
            ("improvement_passes", Json::Int(*improvement_passes as i64)),
        ]),
        SolverKind::Sdc { improvement_passes } => obj(vec![
            ("kind", Json::Str("sdc".to_owned())),
            ("improvement_passes", Json::Int(*improvement_passes as i64)),
        ]),
        SolverKind::Ilp { max_nodes } => obj(vec![
            ("kind", Json::Str("ilp".to_owned())),
            ("max_nodes", Json::Int(*max_nodes as i64)),
        ]),
        SolverKind::Hybrid {
            max_nodes,
            ilp_op_limit,
            improvement_passes,
        } => obj(vec![
            ("kind", Json::Str("hybrid".to_owned())),
            ("max_nodes", Json::Int(*max_nodes as i64)),
            ("ilp_op_limit", Json::Int(*ilp_op_limit as i64)),
            ("improvement_passes", Json::Int(*improvement_passes as i64)),
        ]),
        SolverKind::Portfolio { backends } => obj(vec![
            ("kind", Json::Str("portfolio".to_owned())),
            (
                "backends",
                Json::Array(backends.iter().map(spec_json).collect()),
            ),
        ]),
        other => obj(vec![("kind", Json::Str(kind_name(other).to_owned()))]),
    }
}

/// The canonical flag-syntax form of a resolved spec (parse-able by
/// [`parse_spec`] up to field defaults), used in human-facing summaries.
pub fn spec_display(kind: &SolverKind) -> String {
    match kind {
        SolverKind::Heuristic { improvement_passes } => {
            format!("heuristic:improvement_passes={improvement_passes}")
        }
        SolverKind::Sdc { improvement_passes } => {
            format!("sdc:improvement_passes={improvement_passes}")
        }
        SolverKind::Ilp { max_nodes } => format!("ilp:max_nodes={max_nodes}"),
        SolverKind::Hybrid {
            max_nodes,
            ilp_op_limit,
            improvement_passes,
        } => format!(
            "hybrid:max_nodes={max_nodes},ilp_op_limit={ilp_op_limit},\
             improvement_passes={improvement_passes}"
        ),
        SolverKind::Portfolio { backends } => {
            let legs: Vec<&str> = backends.iter().map(kind_name).collect();
            format!("portfolio:{}", legs.join("+"))
        }
        other => kind_name(other).to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_names_resolve_to_defaults() {
        assert!(matches!(
            parse_spec("heuristic").unwrap(),
            SolverKind::Heuristic {
                improvement_passes: 2
            }
        ));
        assert!(matches!(
            parse_spec("sdc").unwrap(),
            SolverKind::Sdc {
                improvement_passes: 2
            }
        ));
        assert!(matches!(
            parse_spec("ilp").unwrap(),
            SolverKind::Ilp { max_nodes: 500_000 }
        ));
        let SolverKind::Portfolio { backends } = parse_spec("portfolio").unwrap() else {
            panic!("expected portfolio");
        };
        assert_eq!(backends.len(), 3);
        assert!(matches!(
            backends[2],
            SolverKind::Ilp {
                max_nodes: PORTFOLIO_ILP_MAX_NODES
            }
        ));
    }

    #[test]
    fn field_assignments_parse() {
        assert!(matches!(
            parse_spec("hybrid:max_nodes=20000").unwrap(),
            SolverKind::Hybrid {
                max_nodes: 20_000,
                ilp_op_limit: 8,
                improvement_passes: 2
            }
        ));
        assert!(matches!(
            parse_spec("sdc:improvement_passes=5").unwrap(),
            SolverKind::Sdc {
                improvement_passes: 5
            }
        ));
        assert!(matches!(
            parse_spec("hybrid:max_nodes=1,ilp_op_limit=3,improvement_passes=0").unwrap(),
            SolverKind::Hybrid {
                max_nodes: 1,
                ilp_op_limit: 3,
                improvement_passes: 0
            }
        ));
    }

    #[test]
    fn portfolio_legs_parse_in_order() {
        let SolverKind::Portfolio { backends } = parse_spec("portfolio:sdc+heuristic+ilp").unwrap()
        else {
            panic!("expected portfolio");
        };
        assert_eq!(
            backends.iter().map(kind_name).collect::<Vec<_>>(),
            vec!["sdc", "heuristic", "ilp"]
        );
    }

    #[test]
    fn errors_name_backend_field_and_registry() {
        let e = parse_spec("quantum").unwrap_err();
        assert!(e.contains("quantum") && e.contains("heuristic|sdc|ilp|hybrid|portfolio"));
        let e = parse_spec("ilp:improvement_passes=2").unwrap_err();
        assert!(e.contains("'ilp'") && e.contains("improvement_passes") && e.contains("max_nodes"));
        let e = parse_spec("ilp:max_nodes=lots").unwrap_err();
        assert!(e.contains("'max_nodes'") && e.contains("'lots'"));
        let e = parse_spec("portfolio:heuristic+hybrid").unwrap_err();
        assert!(e.contains("'hybrid'") && e.contains("leaf"));
        let e = parse_spec("portfolio:max_nodes=5").unwrap_err();
        assert!(e.contains("'+'-separated"));
        let e = parse_spec("sdc:").unwrap_err();
        assert!(e.contains("empty argument list"));
    }

    #[test]
    fn json_string_and_object_forms_agree() {
        let from_str = spec_from_json(&Json::Str("hybrid:max_nodes=9".to_owned())).unwrap();
        let from_obj = spec_from_json(&obj(vec![
            ("kind", Json::Str("hybrid".to_owned())),
            ("max_nodes", Json::Int(9)),
        ]))
        .unwrap();
        assert_eq!(format!("{from_str:?}"), format!("{from_obj:?}"));
    }

    #[test]
    fn json_portfolio_mixes_strings_and_objects() {
        let spec = spec_from_json(&obj(vec![
            ("kind", Json::Str("portfolio".to_owned())),
            (
                "backends",
                Json::Array(vec![
                    Json::Str("heuristic".to_owned()),
                    obj(vec![
                        ("kind", Json::Str("ilp".to_owned())),
                        ("max_nodes", Json::Int(123)),
                    ]),
                ]),
            ),
        ]))
        .unwrap();
        let SolverKind::Portfolio { backends } = spec else {
            panic!("expected portfolio");
        };
        assert_eq!(backends.len(), 2);
        assert!(matches!(backends[1], SolverKind::Ilp { max_nodes: 123 }));
    }

    #[test]
    fn json_errors_are_targeted() {
        let e = spec_from_json(&Json::Int(3)).unwrap_err();
        assert!(e.contains("string or an object"));
        let e = spec_from_json(&obj(vec![
            ("kind", Json::Str("portfolio".to_owned())),
            ("max_nodes", Json::Int(1)),
        ]))
        .unwrap_err();
        assert!(e.contains("'portfolio'") && e.contains("backends"));
        let e = spec_from_json(&obj(vec![
            ("kind", Json::Str("portfolio".to_owned())),
            (
                "backends",
                Json::Array(vec![Json::Str("hybrid".to_owned())]),
            ),
        ]))
        .unwrap_err();
        assert!(e.contains("leaf"));
    }

    #[test]
    fn echo_round_trips_through_the_parser() {
        for text in [
            "heuristic",
            "sdc",
            "ilp",
            "hybrid:max_nodes=77",
            "portfolio:heuristic+sdc+ilp",
        ] {
            let spec = parse_spec(text).unwrap();
            let reparsed = spec_from_json(&spec_json(&spec)).unwrap();
            assert_eq!(
                format!("{spec:?}"),
                format!("{reparsed:?}"),
                "echo of {text}"
            );
            let display = spec_display(&spec);
            // The display form is lossy for portfolio leg budgets but must
            // always re-parse to the same backend kinds.
            assert_eq!(kind_name(&parse_spec(&display).unwrap()), kind_name(&spec));
        }
    }
}
