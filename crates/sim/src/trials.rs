//! Monte-Carlo trial aggregation over simulated executions, including
//! fault-injected survivability comparisons across scheduling policies.

use crate::fault::{
    run_with_recovery, simulate_hybrid_with_faults, simulate_online_with_faults, FaultModel,
};
use crate::{
    pad_indeterminate, simulate_hybrid, simulate_online, simulate_padded, DurationModel, SimConfig,
    SimError,
};
use mfhls_core::recovery::RetryPolicy;
use mfhls_core::{Assay, Duration, HybridSchedule, OpId, SynthConfig, Synthesizer};
use std::collections::BTreeSet;

/// Summary statistics over repeated stochastic executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialStats {
    /// Number of trials aggregated.
    pub trials: u64,
    /// Minimum makespan observed.
    pub min: u64,
    /// Median makespan.
    pub median: u64,
    /// 95th-percentile makespan.
    pub p95: u64,
    /// Maximum makespan observed.
    pub max: u64,
    /// Mean makespan, rounded to the nearest unit.
    pub mean: u64,
    /// Run-time control decisions per trial (constant per policy).
    pub decisions: usize,
}

impl TrialStats {
    fn from_spans(mut spans: Vec<u64>, decisions: usize) -> TrialStats {
        assert!(!spans.is_empty(), "at least one trial required");
        spans.sort_unstable();
        let n = spans.len();
        let pct = |p: f64| spans[(((n - 1) as f64) * p).round() as usize];
        TrialStats {
            trials: n as u64,
            min: spans[0],
            median: pct(0.5),
            p95: pct(0.95),
            max: spans[n - 1],
            mean: (spans.iter().sum::<u64>() as f64 / n as f64).round() as u64,
            decisions,
        }
    }
}

impl std::fmt::Display for TrialStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} trials: min {}m, median {}m, p95 {}m, max {}m (mean {}m, {} decisions)",
            self.trials, self.min, self.median, self.p95, self.max, self.mean, self.decisions
        )
    }
}

/// Runs `trials` hybrid executions with seeds `0..trials` and aggregates
/// the realized makespans.
///
/// # Errors
///
/// Propagates the first [`SimError`] (an invalid schedule fails on every
/// seed identically).
///
/// # Panics
///
/// Panics if `trials == 0`.
///
/// # Example
///
/// ```
/// use mfhls_core::{Assay, Duration, Operation, SynthConfig, Synthesizer};
/// use mfhls_sim::{trials, DurationModel};
///
/// let mut assay = Assay::new("demo");
/// assay.add_op(Operation::new("capture").with_duration(Duration::at_least(2)));
/// let r = Synthesizer::new(SynthConfig::default()).run(&assay)?;
/// let stats = trials::run_hybrid_trials(
///     &assay,
///     &r.schedule,
///     DurationModel::GeometricRetry { success_probability: 0.5, max_attempts: 10 },
///     50,
/// )?;
/// assert!(stats.min >= 2);
/// assert!(stats.p95 >= stats.median);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_hybrid_trials(
    assay: &Assay,
    schedule: &HybridSchedule,
    model: DurationModel,
    trials: u64,
) -> Result<TrialStats, SimError> {
    assert!(trials > 0, "at least one trial required");
    // Each trial owns its own seeded RNG stream, so trials run in parallel;
    // the ordered reduction folds results in seed order, making the stats
    // bitwise identical to the sequential loop at any thread count.
    let seeds: Vec<u64> = (0..trials).collect();
    let runs = mfhls_par::par_map(&seeds, |&seed| {
        // With one thread the closure runs inline on the recording thread;
        // muting keeps per-trial events out of the (thread-count-invariant)
        // logical trace.
        let _quiet = mfhls_obs::muted();
        simulate_hybrid(assay, schedule, &SimConfig { model, seed })
    });
    let mut spans = Vec::with_capacity(trials as usize);
    let mut decisions = 0;
    for run in runs {
        let run = run?;
        decisions = run.decisions;
        spans.push(run.makespan);
    }
    Ok(TrialStats::from_spans(spans, decisions))
}

/// Runs `trials` fully-online executions (see
/// [`simulate_online`]) and aggregates makespans.
///
/// # Errors
///
/// Propagates the first [`SimError`].
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn run_online_trials(
    assay: &Assay,
    schedule: &HybridSchedule,
    model: DurationModel,
    trials: u64,
    decision_latency: u64,
    serial_decisions: bool,
) -> Result<TrialStats, SimError> {
    assert!(trials > 0, "at least one trial required");
    let seeds: Vec<u64> = (0..trials).collect();
    let runs = mfhls_par::par_map(&seeds, |&seed| {
        let _quiet = mfhls_obs::muted();
        simulate_online(
            assay,
            schedule,
            &SimConfig { model, seed },
            decision_latency,
            serial_decisions,
        )
    });
    let mut spans = Vec::with_capacity(trials as usize);
    let mut decisions = 0;
    for run in runs {
        let run = run?;
        decisions = run.decisions;
        spans.push(run.makespan);
    }
    Ok(TrialStats::from_spans(spans, decisions))
}

/// Per-policy survivability summary over fault-injected Monte-Carlo trials.
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivalStats {
    /// Policy name (`hybrid+recovery`, `padded-offline`, `online`).
    pub policy: &'static str,
    /// Number of seeded trials.
    pub trials: u64,
    /// Trials in which every operation completed.
    pub completed_runs: u64,
    /// `completed_runs / trials`.
    pub completion_rate: f64,
    /// Mean fraction of operations completed per trial (1.0 on success).
    pub mean_completed_fraction: f64,
    /// Expected makespan over *successful* trials (`None` if none succeeded).
    pub mean_makespan_success: Option<u64>,
    /// Mean recovery re-syntheses per trial (0 for policies without
    /// recovery).
    pub mean_resyntheses: f64,
}

impl std::fmt::Display for SurvivalStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<16} {:>4} trials: {:>5.1}% complete, mean coverage {:>5.1}%",
            self.policy,
            self.trials,
            self.completion_rate * 100.0,
            self.mean_completed_fraction * 100.0,
        )?;
        match self.mean_makespan_success {
            Some(m) => write!(f, ", mean makespan {m}m on success")?,
            None => write!(f, ", no successful run")?,
        }
        if self.mean_resyntheses > 0.0 {
            write!(f, ", {:.2} re-syntheses/trial", self.mean_resyntheses)?;
        }
        Ok(())
    }
}

/// Accumulates one policy's runs into a [`SurvivalStats`].
#[derive(Default)]
struct SurvivalAcc {
    completed_runs: u64,
    fraction_sum: f64,
    makespan_sum: u64,
    resyntheses_sum: u64,
    trials: u64,
}

impl SurvivalAcc {
    fn record(&mut self, complete: bool, fraction: f64, makespan: u64, resyntheses: usize) {
        self.trials += 1;
        self.fraction_sum += fraction;
        self.resyntheses_sum += resyntheses as u64;
        if complete {
            self.completed_runs += 1;
            self.makespan_sum += makespan;
        }
    }

    fn finish(self, policy: &'static str) -> SurvivalStats {
        SurvivalStats {
            policy,
            trials: self.trials,
            completed_runs: self.completed_runs,
            completion_rate: self.completed_runs as f64 / self.trials.max(1) as f64,
            mean_completed_fraction: self.fraction_sum / self.trials.max(1) as f64,
            mean_makespan_success: (self.completed_runs > 0)
                .then(|| (self.makespan_sum as f64 / self.completed_runs as f64).round() as u64),
            mean_resyntheses: self.resyntheses_sum as f64 / self.trials.max(1) as f64,
        }
    }
}

/// Operations abandoned when a padded-offline run overruns its padding:
/// every indeterminate op whose realized duration exceeded the pad, plus
/// all transitive descendants. `descendants` is the assay's reach table
/// ([`mfhls_graph::reach::all_descendants`]), computed once per trial batch
/// instead of re-walking the dependency edges inside every trial.
fn padded_overrun_abandoned(
    assay: &Assay,
    descendants: &[mfhls_graph::BitSet],
    actual: &[u64],
    pad_factor: f64,
) -> BTreeSet<OpId> {
    let overrun: Vec<OpId> = assay
        .iter()
        .filter(|(id, op)| match op.duration() {
            Duration::Fixed(_) => false,
            Duration::Indeterminate { min } => {
                actual[id.index()] > (min as f64 * pad_factor.max(1.0)).ceil() as u64
            }
        })
        .map(|(id, _)| id)
        .collect();
    let mut closure = mfhls_graph::BitSet::new(assay.len());
    for &op in &overrun {
        closure.insert(op.index());
        closure.union_with(&descendants[op.index()]);
    }
    closure.iter().map(OpId).collect()
}

/// Monte-Carlo survivability comparison: runs `trials` fault-injected
/// executions (seeds `0..trials`) under each of three policies and reports
/// completion rate, mean completed fraction, and expected makespan over
/// successful runs:
///
/// 1. **hybrid+recovery** — the paper's hybrid schedule plus this repo's
///    recovery re-synthesis ([`run_with_recovery`]);
/// 2. **padded-offline** — indeterminate durations padded by `pad_factor`
///    and synthesized offline; the trial fails on any permanent fault (no
///    run-time control to react) or padding overrun;
/// 3. **online** — the fault-aware fully-online dispatcher
///    ([`simulate_online_with_faults`]) paying `decision_latency` per
///    dispatch.
///
/// # Errors
///
/// [`SimError::Synthesis`] if the padded baseline cannot be synthesized;
/// otherwise propagates the first [`SimError`] from any run.
///
/// # Panics
///
/// Panics if `trials == 0`.
#[allow(clippy::too_many_arguments)]
pub fn survivability_trials(
    assay: &Assay,
    schedule: &HybridSchedule,
    model: DurationModel,
    faults: &FaultModel,
    policy: &RetryPolicy,
    synth: &SynthConfig,
    trials: u64,
    pad_factor: f64,
    decision_latency: u64,
) -> Result<Vec<SurvivalStats>, SimError> {
    assert!(trials > 0, "at least one trial required");
    let padded_assay = pad_indeterminate(assay, pad_factor);
    let padded_schedule = Synthesizer::new(synth.clone())
        .run(&padded_assay)
        .map_err(|e| SimError::Synthesis(e.to_string()))?
        .schedule;
    // Transitive-reach table shared by every trial's overrun accounting.
    let descendants = mfhls_graph::reach::all_descendants(&assay.graph());
    let n = assay.len().max(1) as f64;

    // One record per policy per trial: (complete, fraction, makespan,
    // resyntheses). Trials are independent (each owns a per-seed SplitMix64
    // stream), so they run in parallel; the ordered reduction below folds
    // them in seed order, so every statistic — including the f64 fraction
    // sums — is bitwise identical to the sequential loop.
    type PolicyRecord = (bool, f64, u64, usize);
    let seeds: Vec<u64> = (0..trials).collect();
    let outcomes: Vec<Result<[PolicyRecord; 3], SimError>> = mfhls_par::par_map(&seeds, |&seed| {
        // Inline at one thread ⇒ would record on the capture thread; the
        // per-trial fault/recovery events (and the nested re-synthesis
        // spans) must not leak into the logical trace.
        let _quiet = mfhls_obs::muted();
        let cfg = SimConfig { model, seed };

        let run = run_with_recovery(assay, schedule, &cfg, faults, policy, synth)?;
        let hybrid = (
            run.outcome.is_complete(),
            run.outcome.completion_fraction(),
            run.makespan,
            run.resyntheses,
        );

        let prun =
            simulate_hybrid_with_faults(&padded_assay, &padded_schedule, &cfg, faults, policy)?;
        let pad_ok = simulate_padded(assay, prun.makespan, pad_factor, &cfg).success;
        let complete = prun.outcome.is_complete() && pad_ok;
        let fraction = if !prun.outcome.is_complete() {
            prun.outcome.completion_fraction()
        } else if !pad_ok {
            let actual = crate::sample_durations(assay, &cfg);
            1.0 - padded_overrun_abandoned(assay, &descendants, &actual, pad_factor).len() as f64
                / n
        } else {
            1.0
        };
        let padded = (complete, fraction, prun.makespan, 0);

        let orun =
            simulate_online_with_faults(assay, schedule, &cfg, faults, policy, decision_latency)?;
        let online = (
            orun.outcome.is_complete(),
            orun.outcome.completion_fraction(),
            orun.makespan,
            0,
        );
        Ok([hybrid, padded, online])
    });

    let mut hybrid = SurvivalAcc::default();
    let mut padded = SurvivalAcc::default();
    let mut online = SurvivalAcc::default();
    for outcome in outcomes {
        let [h, p, o] = outcome?;
        hybrid.record(h.0, h.1, h.2, h.3);
        padded.record(p.0, p.1, p.2, p.3);
        online.record(o.0, o.1, o.2, o.3);
    }

    Ok(vec![
        hybrid.finish("hybrid+recovery"),
        padded.finish("padded-offline"),
        online.finish("online"),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfhls_core::{Duration, Operation, SynthConfig, Synthesizer};

    fn setup() -> (Assay, HybridSchedule) {
        let mut a = Assay::new("t");
        let x = a.add_op(Operation::new("x").with_duration(Duration::fixed(5)));
        let c = a.add_op(Operation::new("c").with_duration(Duration::at_least(3)));
        a.add_dependency(x, c).unwrap();
        let r = Synthesizer::new(SynthConfig::default()).run(&a).unwrap();
        (a, r.schedule)
    }

    #[test]
    fn stats_are_ordered() {
        let (a, s) = setup();
        let stats = run_hybrid_trials(
            &a,
            &s,
            DurationModel::GeometricRetry {
                success_probability: 0.5,
                max_attempts: 10,
            },
            100,
        )
        .unwrap();
        assert!(stats.min <= stats.median);
        assert!(stats.median <= stats.p95);
        assert!(stats.p95 <= stats.max);
        assert!(stats.mean >= stats.min && stats.mean <= stats.max);
        assert_eq!(stats.trials, 100);
    }

    #[test]
    fn exact_model_has_zero_variance() {
        let (a, s) = setup();
        let stats = run_hybrid_trials(&a, &s, DurationModel::Exact, 20).unwrap();
        assert_eq!(stats.min, stats.max);
        assert_eq!(stats.mean, stats.median);
    }

    #[test]
    fn online_trials_report_per_op_decisions() {
        let (a, s) = setup();
        let stats = run_online_trials(&a, &s, DurationModel::Exact, 10, 1, false).unwrap();
        assert_eq!(stats.decisions, a.len());
    }

    #[test]
    fn display_is_informative() {
        let (a, s) = setup();
        let stats = run_hybrid_trials(&a, &s, DurationModel::Exact, 5).unwrap();
        let text = stats.to_string();
        assert!(text.contains("5 trials"));
        assert!(text.contains("median"));
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let (a, s) = setup();
        let _ = run_hybrid_trials(&a, &s, DurationModel::Exact, 0);
    }

    /// Assay with device redundancy: two interchangeable parallel ops, so
    /// recovery has a survivor to fall back on.
    fn redundant_setup() -> (Assay, HybridSchedule) {
        let mut a = Assay::new("redundant");
        a.add_op(Operation::new("p0").with_duration(Duration::fixed(5)));
        a.add_op(Operation::new("p1").with_duration(Duration::fixed(5)));
        let r = Synthesizer::new(SynthConfig::default()).run(&a).unwrap();
        assert!(r.schedule.used_device_count() >= 2);
        (a, r.schedule)
    }

    #[test]
    fn survivability_without_faults_is_perfect() {
        let (a, s) = setup();
        let stats = survivability_trials(
            &a,
            &s,
            DurationModel::Exact,
            &FaultModel::none(),
            &RetryPolicy::default(),
            &SynthConfig::default(),
            10,
            3.0,
            1,
        )
        .unwrap();
        assert_eq!(stats.len(), 3);
        for st in &stats {
            assert_eq!(st.completion_rate, 1.0, "{st}");
            assert_eq!(st.mean_completed_fraction, 1.0, "{st}");
            assert!(st.mean_makespan_success.is_some());
            assert_eq!(st.mean_resyntheses, 0.0);
        }
        // Fault-free hybrid survivability equals the plain hybrid baseline.
        let base = simulate_hybrid(
            &a,
            &s,
            &SimConfig {
                model: DurationModel::Exact,
                seed: 0,
            },
        )
        .unwrap();
        assert_eq!(stats[0].mean_makespan_success, Some(base.makespan));
    }

    #[test]
    fn survivability_under_faults_favors_recovery_over_offline() {
        let (a, s) = redundant_setup();
        let stats = survivability_trials(
            &a,
            &s,
            DurationModel::Exact,
            &FaultModel::uniform(0.05),
            &RetryPolicy::default(),
            &SynthConfig::default(),
            100,
            3.0,
            1,
        )
        .unwrap();
        let hybrid = &stats[0];
        let padded = &stats[1];
        assert_eq!(hybrid.policy, "hybrid+recovery");
        assert_eq!(padded.policy, "padded-offline");
        for st in &stats {
            assert_eq!(st.trials, 100);
            assert!((0.0..=1.0).contains(&st.completion_rate), "{st}");
            assert!(
                st.mean_completed_fraction >= st.completion_rate,
                "partial credit can only add: {st}"
            );
        }
        // The offline flow cannot react to a permanent fault; recovery can.
        assert!(
            hybrid.completion_rate >= padded.completion_rate,
            "hybrid {} < padded {}",
            hybrid.completion_rate,
            padded.completion_rate
        );
        assert!(
            hybrid.mean_resyntheses > 0.0,
            "5% device faults over 100 trials never fired"
        );
    }

    #[test]
    fn survival_stats_display_is_informative() {
        let (a, s) = setup();
        let stats = survivability_trials(
            &a,
            &s,
            DurationModel::Exact,
            &FaultModel::none(),
            &RetryPolicy::default(),
            &SynthConfig::default(),
            5,
            3.0,
            1,
        )
        .unwrap();
        let text = stats[0].to_string();
        assert!(text.contains("hybrid+recovery"), "{text}");
        assert!(text.contains("100.0% complete"), "{text}");
    }
}
