//! Property-based tests for the graph substrate.

use mfhls_graph::{closure_cut, maxflow, reach, reduction, topo, Digraph};
use proptest::prelude::*;

/// Strategy: a random DAG as (node count, forward edges).
fn dag_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..14).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(n * 2)).prop_map(move |raw| {
            raw.into_iter()
                .filter(|&(a, b)| a != b)
                .map(|(a, b)| (a.min(b), a.max(b))) // forward => acyclic
                .collect::<Vec<_>>()
        });
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn toposort_respects_edges((n, edges) in dag_strategy()) {
        let g = Digraph::from_edges(n, edges.iter().copied());
        let order = topo::topological_sort(&g).expect("forward edges are acyclic");
        let mut pos = vec![0usize; n];
        for (k, &u) in order.iter().enumerate() {
            pos[u] = k;
        }
        for &(a, b) in &edges {
            prop_assert!(pos[a] < pos[b], "edge {a}->{b} violated");
        }
    }

    #[test]
    fn descendants_and_ancestors_are_duals((n, edges) in dag_strategy()) {
        let g = Digraph::from_edges(n, edges.iter().copied());
        for u in 0..n {
            let d = reach::descendants(&g, u);
            for v in d.iter() {
                prop_assert!(reach::ancestors(&g, v).contains(u),
                    "{u} reaches {v} but {v}'s ancestors miss {u}");
            }
        }
    }

    #[test]
    fn bulk_closures_match_pointwise((n, edges) in dag_strategy()) {
        let g = Digraph::from_edges(n, edges.iter().copied());
        let all_d = reach::all_descendants(&g);
        let all_a = reach::all_ancestors(&g);
        for u in 0..n {
            prop_assert_eq!(&all_d[u], &reach::descendants(&g, u));
            prop_assert_eq!(&all_a[u], &reach::ancestors(&g, u));
        }
    }

    #[test]
    fn transitive_reduction_preserves_reachability((n, edges) in dag_strategy()) {
        let g = Digraph::from_edges(n, edges.iter().copied());
        let r = reduction::transitive_reduction(&g).expect("DAG");
        prop_assert!(r.edge_count() <= g.edge_count());
        for u in 0..n {
            prop_assert_eq!(reach::descendants(&g, u), reach::descendants(&r, u));
        }
        // Reducing twice is idempotent.
        let rr = reduction::transitive_reduction(&r).expect("DAG");
        prop_assert_eq!(
            r.edges().collect::<Vec<_>>(),
            rr.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn maxflow_bounded_by_degree_cuts(
        (n, raw) in (2usize..8).prop_flat_map(|n| {
            (Just(n), proptest::collection::vec((0..n, 0..n, 1u64..12), 0..16))
        })
    ) {
        let edges: Vec<(usize, usize, u64)> =
            raw.into_iter().filter(|&(a, b, _)| a != b).collect();
        let (s, t) = (0, n - 1);
        let mut net = maxflow::MaxFlow::new(n);
        for &(u, v, c) in &edges {
            net.add_edge(u, v, c);
        }
        let flow = net.max_flow(s, t);
        // Flow can't exceed the out-capacity of s or the in-capacity of t.
        let out_s: u64 = edges.iter().filter(|&&(u, _, _)| u == s).map(|&(_, _, c)| c).sum();
        let in_t: u64 = edges.iter().filter(|&&(_, v, _)| v == t).map(|&(_, _, c)| c).sum();
        prop_assert!(flow <= out_s.min(in_t));
    }

    #[test]
    fn min_cut_variants_agree_on_value(
        (n, raw) in (2usize..8).prop_flat_map(|n| {
            (Just(n), proptest::collection::vec((0..n, 0..n, 1u64..12), 0..16))
        })
    ) {
        let edges: Vec<(usize, usize, u64)> =
            raw.into_iter().filter(|&(a, b, _)| a != b).collect();
        let (s, t) = (0, n - 1);
        let build = || {
            let mut net = maxflow::MaxFlow::new(n);
            for &(u, v, c) in &edges {
                net.add_edge(u, v, c);
            }
            net
        };
        let small = build().min_cut(s, t);
        let large = build().min_cut_max_source(s, t);
        prop_assert_eq!(small.value, large.value);
        // min_cut_max_source's source side is a superset of min_cut's.
        for u in small.source_side.iter() {
            prop_assert!(large.source_side.contains(u));
        }
    }

    #[test]
    fn eviction_cut_is_feasible_and_minimal_on_chains(len in 1usize..8, ext in 0u64..4) {
        // A chain a0 -> a1 -> ... -> sink with `ext` external parents on a0.
        let n = len + 1;
        let edges: Vec<(usize, usize)> = (0..len).map(|i| (i, i + 1)).collect();
        let mut external = vec![0u64; n];
        external[0] = ext;
        let cut = closure_cut::eviction_cut(n, &edges, &external, len);
        // The sink always moves.
        prop_assert!(cut.moved.contains(&len));
        // Chain min-cut: either one internal edge (storage 1) or the
        // external edge (storage = ext), whichever is smaller.
        let expect = if ext == 0 { 0 } else { 1.min(ext) };
        prop_assert_eq!(cut.storage, expect);
    }
}
