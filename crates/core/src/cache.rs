//! Layer-solution memoization for progressive re-synthesis — per-run and
//! shared across runs.
//!
//! Re-synthesis (§3.2) repeatedly re-solves per-layer scheduling problems;
//! across iterations many of those sub-problems are *structurally
//! identical* — same device pool, same inherited paths, same transport
//! estimates. A [`LayerCache`] lives for the duration of one
//! [`Synthesizer::run_seeded`](crate::Synthesizer::run_seeded) call and maps
//! the structural identity of a sub-problem to its solved
//! [`LayerSolution`], so a revisit skips the solver entirely.
//!
//! Because the per-run cache never outlives a run, everything constant
//! within a run (the assay, the layering, weights, costs, the solver
//! configuration, the device budget, the binding mode) is deliberately
//! *not* part of the key. The key captures exactly the inputs that vary
//! between passes:
//!
//! * the layer index (which fixes the op set under a fixed layering — the
//!   ops are still stored verbatim as a guard),
//! * the inherited device pool and its bindability mask,
//! * the transport paths accumulated by earlier layers,
//! * cross-layer parent placements, and
//! * the per-op transport-time estimates (these change whenever transport
//!   refinement changes an op's estimate).
//!
//! # Cross-request sharing
//!
//! A long-lived synthesis service (`mfhls-svc`) sees the same assays over
//! and over; a cache that dies with each run wastes exactly the workload
//! that dominates. A [`SharedLayerCache`] outlives individual runs: it is
//! handed to a [`Synthesizer`](crate::Synthesizer) behind an `Arc` (see
//! [`Synthesizer::with_shared_cache`](crate::Synthesizer::with_shared_cache))
//! and re-scopes every [`LayerKey`] with a [`CacheContext`] — a canonical
//! fingerprint of everything the per-run key deliberately omits (the full
//! assay structure and the solver-relevant configuration). Two runs share
//! entries iff their contexts are byte-identical, so distinct assays or
//! configs can never alias.
//!
//! The shared cache is bounded: insertions beyond the configured capacity
//! evict the oldest entry (FIFO by a global insertion stamp — a
//! deterministic function of the insertion *sequence*, though the sequence
//! itself depends on request execution order). Hit/miss/eviction counters
//! are exposed via [`SharedLayerCache::stats`] and surfaced as `mfhls-obs`
//! counters by the service.
//!
//! All built-in solvers are deterministic functions of the
//! [`LayerProblem`](crate::LayerProblem), so replaying a cached solution is
//! observationally identical to re-solving — schedules are bitwise equal
//! with either cache on or off, whatever its occupancy.

use crate::{LayerProblem, LayerSolution, OpId, SynthConfig};
use mfhls_chip::DeviceConfig;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// A persistence layer behind a [`SharedLayerCache`]: the cache reads
/// through to it on a miss and writes behind to it on insert.
///
/// Implementations must be *pure accelerators*: `fetch` either returns a
/// solution previously passed to `persist` for exactly that
/// `(context, key)` pair, or `None`. They must never fail a lookup — a
/// broken backing store degrades to always-`None`/no-op, surfacing
/// problems through its own diagnostics, so the cache (and every response
/// built from it) behaves identically whether the backing is healthy,
/// degraded, or absent. `mfhls-store` provides the on-disk implementation.
pub trait CacheBacking: Send + Sync + std::fmt::Debug {
    /// Returns the persisted solution for `(context, key)`, if any.
    fn fetch(&self, context: &CacheContext, key: &LayerKey) -> Option<LayerSolution>;

    /// Records `(context, key) -> solution` for future processes. Must be
    /// infallible from the caller's perspective (failures are the
    /// implementation's to swallow and report out-of-band).
    fn persist(&self, context: &CacheContext, key: &LayerKey, solution: &LayerSolution);
}

/// The structural identity of one per-layer sub-problem; see the module
/// docs for what is (and is not) part of the key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LayerKey {
    layer: usize,
    ops: Vec<OpId>,
    devices: Vec<DeviceConfig>,
    bindable: Vec<bool>,
    existing_paths: Vec<(usize, usize)>,
    cross_inputs: Vec<(OpId, usize)>,
    transport: Vec<u64>,
}

impl LayerKey {
    /// Extracts the structural key of `problem` as posed for `layer`.
    pub fn of(problem: &LayerProblem<'_>, layer: usize) -> LayerKey {
        LayerKey {
            layer,
            ops: problem.ops.clone(),
            devices: problem.devices.clone(),
            bindable: problem.bindable.clone(),
            existing_paths: problem.existing_paths.iter().copied().collect(),
            cross_inputs: problem.cross_inputs.clone(),
            transport: problem
                .ops
                .iter()
                .map(|&o| problem.transport.of(o))
                .collect(),
        }
    }

    /// Decomposes the key into its constituent fields, for persistence
    /// layers that need to serialise it ([`CacheBacking`] implementations).
    pub fn to_parts(&self) -> LayerKeyParts {
        LayerKeyParts {
            layer: self.layer,
            ops: self.ops.clone(),
            devices: self.devices.clone(),
            bindable: self.bindable.clone(),
            existing_paths: self.existing_paths.clone(),
            cross_inputs: self.cross_inputs.clone(),
            transport: self.transport.clone(),
        }
    }

    /// Reassembles a key from fields previously produced by
    /// [`LayerKey::to_parts`]. Round-trips exactly: the reassembled key is
    /// `==` (and hashes equal) to the original.
    pub fn from_parts(parts: LayerKeyParts) -> LayerKey {
        LayerKey {
            layer: parts.layer,
            ops: parts.ops,
            devices: parts.devices,
            bindable: parts.bindable,
            existing_paths: parts.existing_paths,
            cross_inputs: parts.cross_inputs,
            transport: parts.transport,
        }
    }
}

/// The constituent fields of a [`LayerKey`], exposed (fields public) so a
/// [`CacheBacking`] implementation outside this crate can serialise and
/// reassemble keys without this crate committing to a wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerKeyParts {
    /// Layer index within the layering.
    pub layer: usize,
    /// Operations of the layer, in layering order.
    pub ops: Vec<OpId>,
    /// Inherited device pool.
    pub devices: Vec<DeviceConfig>,
    /// Bindability mask over `devices`.
    pub bindable: Vec<bool>,
    /// Transport paths accumulated by earlier layers.
    pub existing_paths: Vec<(usize, usize)>,
    /// Cross-layer parent placements.
    pub cross_inputs: Vec<(OpId, usize)>,
    /// Per-op transport-time estimates, parallel to `ops`.
    pub transport: Vec<u64>,
}

/// A per-run memo table of solved layer sub-problems with hit/miss
/// accounting. See the module docs for the key contract.
#[derive(Debug, Default)]
pub struct LayerCache {
    map: HashMap<LayerKey, LayerSolution>,
    hits: u64,
    misses: u64,
}

impl LayerCache {
    /// Creates an empty cache.
    pub fn new() -> LayerCache {
        LayerCache::default()
    }

    /// Looks up a solution, counting a hit or a miss.
    pub fn lookup(&mut self, key: &LayerKey) -> Option<LayerSolution> {
        match self.map.get(key) {
            Some(sol) => {
                self.hits += 1;
                Some(sol.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Whether `key` is present, without touching the counters.
    pub fn contains(&self, key: &LayerKey) -> bool {
        self.map.contains_key(key)
    }

    /// Stores a solution (counted as part of the preceding
    /// [`LayerCache::lookup`] miss).
    pub fn insert(&mut self, key: LayerKey, solution: LayerSolution) {
        self.map.insert(key, solution);
    }

    /// Stores a speculatively pre-solved solution without touching the
    /// counters — used by the parallel pre-solve phase, whose predictions
    /// are not demand lookups.
    pub fn warm(&mut self, key: LayerKey, solution: LayerSolution) {
        self.map.entry(key).or_insert(solution);
    }

    /// Demand lookups that found a solution since the last
    /// [`LayerCache::take_counters`] call.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand lookups that missed since the last
    /// [`LayerCache::take_counters`] call.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached layer solutions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no solutions.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Returns `(hits, misses)` accumulated since the previous call and
    /// resets both counters — one call per re-synthesis iteration gives
    /// per-iteration figures.
    pub fn take_counters(&mut self) -> (u64, u64) {
        let out = (self.hits, self.misses);
        self.hits = 0;
        self.misses = 0;
        out
    }
}

/// The canonical fingerprint of everything a [`LayerKey`] deliberately
/// omits because it is constant within one run: the full assay structure
/// and the solver-relevant configuration. A [`SharedLayerCache`] scopes
/// every key with one of these so entries from different assays or
/// configurations can never alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheContext(Arc<str>);

impl CacheContext {
    /// Builds the context for synthesising `assay` under `config`.
    ///
    /// The encoding covers every input that can change a layer solution
    /// beyond what [`LayerKey`] already captures: each operation's
    /// requirements and duration, the dependency edges, the layering
    /// threshold, the device budget, the objective weights, the cost
    /// model, the solver kind (with its parameters) and the binding mode.
    /// Operation display names are excluded — they never influence
    /// solving.
    pub fn of(assay: &crate::Assay, config: &SynthConfig) -> CacheContext {
        let mut s = String::new();
        let _ = write!(
            s,
            "cfg:d{} t{} w{:?} c{:?} s{:?} co{}|",
            config.max_devices,
            config.indeterminate_threshold,
            config.weights,
            config.costs,
            config.solver,
            config.component_oriented,
        );
        let _ = write!(s, "tr{:?}|", config.transport);
        for op in assay.op_ids() {
            let o = assay.op(op);
            let _ = write!(
                s,
                "o{}:{:?}/{:?};",
                op.index(),
                o.requirements(),
                o.duration()
            );
        }
        s.push('|');
        for (p, c) in assay.dependencies() {
            let _ = write!(s, "e{}>{};", p.index(), c.index());
        }
        CacheContext(s.into())
    }

    /// The canonical encoding, for persistence layers that need to store
    /// the context alongside a key. Two contexts are equal iff these
    /// strings are equal.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Rebuilds a context from a string previously returned by
    /// [`CacheContext::as_str`]. Round-trips exactly.
    pub fn from_canonical(s: &str) -> CacheContext {
        CacheContext(s.into())
    }
}

/// Aggregate counters of a [`SharedLayerCache`].
///
/// Hits and misses count *demand* lookups only (speculative warming is
/// excluded, mirroring [`LayerCache`]). The split is diagnostic: it varies
/// with request interleaving and worker count, while the schedules served
/// from the cache never do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookups that found an entry.
    pub hits: u64,
    /// Demand lookups that missed.
    pub misses: u64,
    /// Entries stored (demand and speculative).
    pub insertions: u64,
    /// Entries dropped to keep the cache within its capacity.
    pub evictions: u64,
    /// Entries currently held.
    pub entries: usize,
    /// Configured entry bound.
    pub capacity: usize,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0.0 before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A layer-key scoped by its run context; the key type of the shared map.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SharedKey {
    context: CacheContext,
    key: LayerKey,
}

#[derive(Debug, Default)]
struct SharedState {
    map: HashMap<SharedKey, (u64, LayerSolution)>,
    /// Insertion stamps, oldest first — the FIFO eviction order.
    order: BTreeMap<u64, SharedKey>,
    next_stamp: u64,
    hits: u64,
    misses: u64,
    /// Hits since the last [`SharedLayerCache::take_window_counters`] call.
    window_hits: u64,
    /// Misses since the last [`SharedLayerCache::take_window_counters`] call.
    window_misses: u64,
    insertions: u64,
    evictions: u64,
}

/// A bounded, thread-safe layer-solution cache shared across synthesis
/// runs. See the module docs for the key contract and the eviction policy.
///
/// When a [`CacheBacking`] is attached ([`SharedLayerCache::set_backing`])
/// the cache *reads through* to it on a miss (a persisted solution is
/// promoted back into the map and served as a hit) and *writes behind* to
/// it on every fresh insert. The backing is consulted strictly outside the
/// cache lock, so a slow or faulty store never blocks concurrent lookups.
#[derive(Debug)]
pub struct SharedLayerCache {
    state: Mutex<SharedState>,
    backing: Mutex<Option<Arc<dyn CacheBacking>>>,
    capacity: usize,
}

impl SharedLayerCache {
    /// Creates a cache bounded to `capacity` entries (min 1).
    pub fn new(capacity: usize) -> SharedLayerCache {
        SharedLayerCache {
            state: Mutex::new(SharedState::default()),
            backing: Mutex::new(None),
            capacity: capacity.max(1),
        }
    }

    /// Attaches a persistence layer. Subsequent misses read through to it
    /// and subsequent inserts write behind to it. Attach *after* any bulk
    /// warm-load so the loaded entries are not immediately re-persisted.
    pub fn set_backing(&self, backing: Arc<dyn CacheBacking>) {
        *lock_or_recover(&self.backing) = Some(backing);
    }

    fn backing(&self) -> Option<Arc<dyn CacheBacking>> {
        lock_or_recover(&self.backing).clone()
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, SharedState> {
        lock_or_recover(&self.state)
    }

    fn lookup(&self, context: &CacheContext, key: &LayerKey) -> Option<LayerSolution> {
        {
            let mut st = self.locked();
            // Borrow-free probe: build the composite key only on the stack.
            let probe = SharedKey {
                context: context.clone(),
                key: key.clone(),
            };
            if let Some((_, sol)) = st.map.get(&probe) {
                let sol = sol.clone();
                st.hits += 1;
                st.window_hits += 1;
                return Some(sol);
            }
        }
        // Read-through: consult the backing outside the lock. A persisted
        // solution counts as a hit (the run got a memoized solution) and
        // is promoted back into the map for subsequent lookups.
        if let Some(sol) = self
            .backing()
            .and_then(|backing| backing.fetch(context, key))
        {
            self.insert_into_map(context, key.clone(), sol.clone());
            let mut st = self.locked();
            st.hits += 1;
            st.window_hits += 1;
            return Some(sol);
        }
        let mut st = self.locked();
        st.misses += 1;
        st.window_misses += 1;
        None
    }

    fn contains(&self, context: &CacheContext, key: &LayerKey) -> bool {
        let st = self.locked();
        let probe = SharedKey {
            context: context.clone(),
            key: key.clone(),
        };
        st.map.contains_key(&probe)
    }

    fn insert(&self, context: &CacheContext, key: LayerKey, solution: LayerSolution) {
        // Write-behind: persist freshly inserted solutions, outside the
        // lock. The backing dedups entries it already holds, so promoting
        // a read-through result back into the map never re-persists it.
        match self.backing() {
            None => {
                self.insert_into_map(context, key, solution);
            }
            Some(backing) => {
                if self.insert_into_map(context, key.clone(), solution.clone()) {
                    backing.persist(context, &key, &solution);
                }
            }
        }
    }

    /// Inserts into the in-memory map only; returns whether the entry was
    /// freshly inserted (false = already present, nothing changed).
    fn insert_into_map(
        &self,
        context: &CacheContext,
        key: LayerKey,
        solution: LayerSolution,
    ) -> bool {
        let shared = SharedKey {
            context: context.clone(),
            key,
        };
        let mut st = self.locked();
        if st.map.contains_key(&shared) {
            return false;
        }
        let stamp = st.next_stamp;
        st.next_stamp += 1;
        st.map.insert(shared.clone(), (stamp, solution));
        st.order.insert(stamp, shared);
        st.insertions += 1;
        while st.map.len() > self.capacity {
            let Some((&oldest, _)) = st.order.iter().next() else {
                break;
            };
            if let Some(victim) = st.order.remove(&oldest) {
                st.map.remove(&victim);
                st.evictions += 1;
            }
        }
        true
    }

    /// Inserts an entry loaded from a persistent store without notifying
    /// the backing (bulk warm-load path; also safe before
    /// [`SharedLayerCache::set_backing`] is called at all).
    pub fn warm_load(&self, context: &CacheContext, key: LayerKey, solution: LayerSolution) {
        self.insert_into_map(context, key, solution);
    }

    /// Returns the demand `(hits, misses)` accumulated since the previous
    /// call and resets the window counters (the lifetime counters reported
    /// by [`SharedLayerCache::stats`] keep accumulating). One call per
    /// admission window gives per-window figures — the `mfhls-svc` serve
    /// loop uses this so its summary reports window rates instead of
    /// silently mixing in traffic from earlier connections.
    pub fn take_window_counters(&self) -> (u64, u64) {
        let mut st = self.locked();
        (
            std::mem::take(&mut st.window_hits),
            std::mem::take(&mut st.window_misses),
        )
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let st = self.locked();
        CacheStats {
            hits: st.hits,
            misses: st.misses,
            insertions: st.insertions,
            evictions: st.evictions,
            entries: st.map.len(),
            capacity: self.capacity,
        }
    }

    /// Number of cached layer solutions.
    pub fn len(&self) -> usize {
        self.locked().map.len()
    }

    /// Whether the cache holds no solutions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        let mut st = self.locked();
        st.map.clear();
        st.order.clear();
    }
}

/// The cache view one synthesis run works against: either a private
/// [`LayerCache`] that dies with the run, or a [`SharedLayerCache`] handle
/// scoped by the run's [`CacheContext`]. Either way the run keeps its own
/// hit/miss counters so [`IterationStats`](crate::IterationStats) reports
/// per-run figures.
#[derive(Debug)]
pub enum RunCache {
    /// A per-run memo table (the default).
    Local(LayerCache),
    /// A handle into a cross-request shared cache.
    Shared {
        /// The long-lived cache.
        cache: Arc<SharedLayerCache>,
        /// This run's scoping context.
        context: CacheContext,
        /// Demand hits charged to this run.
        hits: u64,
        /// Demand misses charged to this run.
        misses: u64,
    },
}

impl RunCache {
    /// A fresh per-run cache.
    pub fn local() -> RunCache {
        RunCache::Local(LayerCache::new())
    }

    /// A handle into `cache`, scoped to `assay` under `config`.
    pub fn shared(
        cache: Arc<SharedLayerCache>,
        assay: &crate::Assay,
        config: &SynthConfig,
    ) -> RunCache {
        RunCache::Shared {
            context: CacheContext::of(assay, config),
            cache,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a solution, counting a hit or a miss.
    pub fn lookup(&mut self, key: &LayerKey) -> Option<LayerSolution> {
        match self {
            RunCache::Local(c) => c.lookup(key),
            RunCache::Shared {
                cache,
                context,
                hits,
                misses,
            } => {
                let sol = cache.lookup(context, key);
                match sol.is_some() {
                    true => *hits += 1,
                    false => *misses += 1,
                }
                sol
            }
        }
    }

    /// Whether `key` is present, without touching the counters.
    pub fn contains(&self, key: &LayerKey) -> bool {
        match self {
            RunCache::Local(c) => c.contains(key),
            RunCache::Shared { cache, context, .. } => cache.contains(context, key),
        }
    }

    /// Stores a demand-solved solution.
    pub fn insert(&mut self, key: LayerKey, solution: LayerSolution) {
        match self {
            RunCache::Local(c) => c.insert(key, solution),
            RunCache::Shared { cache, context, .. } => cache.insert(context, key, solution),
        }
    }

    /// Stores a speculatively pre-solved solution without counting.
    pub fn warm(&mut self, key: LayerKey, solution: LayerSolution) {
        match self {
            RunCache::Local(c) => c.warm(key, solution),
            RunCache::Shared { cache, context, .. } => cache.insert(context, key, solution),
        }
    }

    /// Returns this run's `(hits, misses)` since the previous call and
    /// resets them.
    pub fn take_counters(&mut self) -> (u64, u64) {
        match self {
            RunCache::Local(c) => c.take_counters(),
            RunCache::Shared { hits, misses, .. } => (std::mem::take(hits), std::mem::take(misses)),
        }
    }
}

/// Locks `mutex`, recovering from poison: a poisoned mutex means a solver
/// panicked mid-operation, but neither the map nor the backing slot is
/// ever left partially mutated, so keep serving.
fn lock_or_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        Assay, Duration, LayerSolver, Operation, TransportConfig, TransportTimes, Weights,
    };
    use mfhls_chip::CostModel;
    use std::collections::BTreeSet;

    fn assay() -> Assay {
        let mut a = Assay::new("t");
        a.add_op(Operation::new("x").with_duration(Duration::fixed(5)));
        a.add_op(Operation::new("y").with_duration(Duration::fixed(3)));
        a
    }

    fn problem<'a>(
        assay: &'a Assay,
        transport: &'a TransportTimes,
        costs: &'a CostModel,
    ) -> LayerProblem<'a> {
        LayerProblem {
            assay,
            ops: assay.op_ids().collect(),
            devices: vec![],
            bindable: vec![],
            max_devices: 4,
            transport,
            weights: Weights::default(),
            costs,
            existing_paths: BTreeSet::new(),
            cross_inputs: vec![],
            component_oriented: true,
        }
    }

    #[test]
    fn identical_problems_share_a_key() {
        let a = assay();
        let t = TransportTimes::initial(&a, &TransportConfig::default());
        let costs = CostModel::default();
        let k1 = LayerKey::of(&problem(&a, &t, &costs), 0);
        let k2 = LayerKey::of(&problem(&a, &t, &costs), 0);
        assert_eq!(k1, k2);
    }

    #[test]
    fn key_distinguishes_layer_paths_and_transport() {
        let a = assay();
        let t = TransportTimes::initial(&a, &TransportConfig::default());
        let costs = CostModel::default();
        let base = LayerKey::of(&problem(&a, &t, &costs), 0);
        assert_ne!(base, LayerKey::of(&problem(&a, &t, &costs), 1));
        let mut with_path = problem(&a, &t, &costs);
        with_path.existing_paths.insert((0, 1));
        assert_ne!(base, LayerKey::of(&with_path, 0));
        let device_of = vec![0usize, 0];
        let refined = TransportTimes::refined(&a, &TransportConfig::default(), &device_of);
        let refined_problem = problem(&a, &refined, &costs);
        let refined_key = LayerKey::of(&refined_problem, 0);
        // Refinement with everything co-located drops transport estimates.
        assert_ne!(base, refined_key);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let a = assay();
        let t = TransportTimes::initial(&a, &TransportConfig::default());
        let costs = CostModel::default();
        let p = problem(&a, &t, &costs);
        let key = LayerKey::of(&p, 0);
        let mut cache = LayerCache::new();
        assert!(cache.lookup(&key).is_none());
        let sol = crate::solver::SolverKind::default().solve(&p).unwrap();
        cache.insert(key.clone(), sol.clone());
        assert!(cache.contains(&key));
        assert_eq!(cache.lookup(&key), Some(sol.clone()));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.take_counters(), (1, 1));
        assert_eq!(cache.take_counters(), (0, 0));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
        // warm never overwrites and never counts.
        cache.warm(key.clone(), sol);
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn context_distinguishes_assays_and_configs() {
        let a = assay();
        let config = SynthConfig::default();
        assert_eq!(CacheContext::of(&a, &config), CacheContext::of(&a, &config));
        let mut b = assay();
        b.add_op(Operation::new("z").with_duration(Duration::fixed(9)));
        assert_ne!(CacheContext::of(&a, &config), CacheContext::of(&b, &config));
        let tighter = SynthConfig::builder().max_devices(3).build().unwrap();
        assert_ne!(
            CacheContext::of(&a, &config),
            CacheContext::of(&a, &tighter)
        );
    }

    #[test]
    fn shared_cache_scopes_by_context_and_evicts_fifo() {
        let a = assay();
        let t = TransportTimes::initial(&a, &TransportConfig::default());
        let costs = CostModel::default();
        let p = problem(&a, &t, &costs);
        let sol = crate::solver::SolverKind::default().solve(&p).unwrap();
        let config = SynthConfig::default();

        let shared = Arc::new(SharedLayerCache::new(2));
        let mut run_a = RunCache::shared(shared.clone(), &a, &config);
        let key0 = LayerKey::of(&p, 0);
        assert!(run_a.lookup(&key0).is_none());
        run_a.insert(key0.clone(), sol.clone());
        assert_eq!(run_a.lookup(&key0), Some(sol.clone()));
        assert_eq!(run_a.take_counters(), (1, 1));

        // A different context never sees the entry.
        let mut b = assay();
        b.add_op(Operation::new("z").with_duration(Duration::fixed(9)));
        let mut run_b = RunCache::shared(shared.clone(), &b, &config);
        assert!(!run_b.contains(&key0));
        assert!(run_b.lookup(&key0).is_none());

        // FIFO eviction keeps the bound: capacity 2, three inserts.
        run_a.insert(LayerKey::of(&p, 1), sol.clone());
        run_a.insert(LayerKey::of(&p, 2), sol.clone());
        let stats = shared.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.capacity, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.insertions, 3);
        // The oldest entry (key0) was the victim.
        assert!(!run_a.contains(&key0));
        assert!(run_a.contains(&LayerKey::of(&p, 2)));
        assert!(stats.hit_rate() > 0.0);

        shared.clear();
        assert!(shared.is_empty());
    }
}
