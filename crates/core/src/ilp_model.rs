//! The faithful per-layer ILP model of §4, solved with `mfhls-ilp`.
//!
//! Variables follow Table 1 of the paper, with the encoding notes from
//! `DESIGN.md` §5:
//!
//! * device configuration (eqs. 1–4) is encoded as six (container,
//!   capacity) *configuration binaries* per new device — exactly the six
//!   fabricable pairs — whose sum is the device's *used* indicator; this
//!   linearises the per-kind capacity pricing of eqs. 16–17 exactly;
//! * component-oriented consistence (eqs. 5–8) links binding variables to
//!   configuration/accessory binaries;
//! * dependencies (eq. 9), big-M device-conflict disjunctions (eqs. 10–13),
//!   indeterminate-at-end (eq. 14), makespan (eq. 15) and path counting
//!   (eq. 21) are transcribed directly;
//! * the objective is `C_t·sum_t + C_a·sum_a + C_pr·sum_pr + C_p·sum_p`.
//!
//! Devices inherited from other layers have fixed configurations and zero
//! marginal cost; new devices are priced by their chosen configuration.
//! Exactness is cross-checked against exhaustive search and the heuristic
//! solver in the test-suite. The model grows as
//! `O(|ops|² · |devices|)`; with the warm-started bounded-variable simplex
//! behind `mfhls-ilp` (DESIGN.md §9) it is practical for paper-scale layers
//! of ~25 operations, and [`SolverKind::Hybrid`](crate::SolverKind) remains
//! the right choice beyond that.

use crate::problem::path_key;
use crate::{CoreError, LayerProblem, LayerSolution, LayerSolver, OpId, ScheduledOp};
use mfhls_chip::{Accessory, Capacity, ContainerKind, DeviceConfig};
use mfhls_ilp::{LinExpr, Model, Sense, SolverConfig, VarId};
use std::collections::{BTreeMap, BTreeSet};

/// The six fabricable (container, capacity) configurations.
const CONFIGS: [(ContainerKind, Capacity); 6] = [
    (ContainerKind::Ring, Capacity::Large),
    (ContainerKind::Ring, Capacity::Medium),
    (ContainerKind::Ring, Capacity::Small),
    (ContainerKind::Chamber, Capacity::Medium),
    (ContainerKind::Chamber, Capacity::Small),
    (ContainerKind::Chamber, Capacity::Tiny),
];

/// Exact layer solver backed by the branch-and-bound MILP engine.
#[derive(Debug, Clone, Copy)]
pub struct IlpLayerSolver {
    /// Branch-and-bound node budget.
    pub max_nodes: usize,
    /// Optional wall-clock limit for the search.
    pub time_limit: Option<std::time::Duration>,
    /// Optional objective cutoff (e.g. a heuristic solution's objective):
    /// the search only explores strictly better nodes.
    pub cutoff: Option<u64>,
    /// Carry the simplex basis across branch-and-bound nodes (default:
    /// true). `false` cold-solves every node — the scratch baseline used to
    /// benchmark the warm-start win.
    pub warm_start: bool,
    /// Deterministic total-pivot budget for the search (see
    /// [`mfhls_ilp::SolverConfig::max_pivots`]).
    pub max_pivots: Option<u64>,
    /// Deterministic work budget in *tableau cells*: a simplex pivot
    /// updates ~rows × columns cells, so dividing this by the built
    /// model's dimensions yields a pivot budget proportional to
    /// wall-clock across model sizes — a dense paper-scale layer pays
    /// milliseconds per pivot where a small corpus layer pays
    /// microseconds, which no flat pivot (let alone node) budget can
    /// bound evenly. Converted to a pivot cap once the model is built;
    /// the tighter of the two limits wins. The portfolio racer keys its
    /// ILP legs on this.
    pub pivot_work: Option<u64>,
}

impl Default for IlpLayerSolver {
    fn default() -> Self {
        IlpLayerSolver {
            max_nodes: 200_000,
            time_limit: None,
            cutoff: None,
            warm_start: true,
            max_pivots: None,
            pivot_work: None,
        }
    }
}

impl IlpLayerSolver {
    /// Like [`LayerSolver::solve`], but also returns the solver work
    /// counters — populated even when the solve *fails* (e.g. the cutoff
    /// pruned every node, as routinely happens on Hybrid attempts), which
    /// `solve` cannot report.
    pub fn solve_with_stats(
        &self,
        p: &LayerProblem<'_>,
    ) -> (Result<LayerSolution, CoreError>, crate::SolverStats) {
        if !p.component_oriented {
            return (
                Err(CoreError::Ilp(
                    "the exact back-end only implements the component-oriented model; \
                     use the heuristic solver for the conventional baseline"
                        .to_owned(),
                )),
                crate::SolverStats::default(),
            );
        }
        let built = build_model(p);
        // `pivot_work` is denominated in tableau cells; the simplex works
        // on an m × (n + m) tableau, so one pivot costs ~m·(n+m) cells.
        let from_work = self.pivot_work.map(|work| {
            let m = built.model.num_cons() as u64;
            let cells = m.saturating_mul(m + built.model.num_vars() as u64);
            (work / cells.max(1)).max(1)
        });
        let max_pivots = match (self.max_pivots, from_work) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let config = SolverConfig {
            max_nodes: self.max_nodes,
            time_limit: self.time_limit,
            cutoff: self.cutoff.map(|c| c as f64),
            warm_start: self.warm_start,
            max_pivots,
            ..SolverConfig::default()
        };
        let mut bb = match mfhls_ilp::BranchAndBound::new(&built.model, &config) {
            Ok(bb) => bb,
            // Presolve proved infeasibility (or a malformed bound): no
            // search ran, so there are no counters to report.
            Err(e) => {
                return (
                    Err(CoreError::Ilp(e.to_string())),
                    crate::SolverStats {
                        ilp_solves: 1,
                        ..crate::SolverStats::default()
                    },
                )
            }
        };
        match bb.run() {
            Ok(sol) => {
                let stats = core_stats(bb.stats(), sol.status == mfhls_ilp::SolveStatus::Optimal);
                (Ok(decode(p, &built, &sol, stats)), stats)
            }
            Err(e) => (
                Err(CoreError::Ilp(e.to_string())),
                core_stats(bb.stats(), false),
            ),
        }
    }
}

/// Converts the `mfhls-ilp` counters into the aggregate-friendly core type.
fn core_stats(s: mfhls_ilp::SolveStats, optimal: bool) -> crate::SolverStats {
    crate::SolverStats {
        ilp_solves: 1,
        proven_optimal: u64::from(optimal),
        nodes: s.nodes,
        pivots: s.pivots,
        warm_solves: s.warm_solves,
        cold_solves: s.cold_solves,
        incumbents_supplied: u64::from(s.incumbent_source == mfhls_ilp::IncumbentSource::Supplied),
        incumbents_diving: u64::from(s.incumbent_source == mfhls_ilp::IncumbentSource::Diving),
        incumbents_search: u64::from(s.incumbent_source == mfhls_ilp::IncumbentSource::Search),
        heuristic_rounds: 0,
        rebind_adoptions: 0,
        ..crate::SolverStats::default()
    }
}

impl LayerSolver for IlpLayerSolver {
    fn solve(&self, p: &LayerProblem<'_>) -> Result<LayerSolution, CoreError> {
        self.solve_with_stats(p).0
    }
}

/// Builds the layer's MILP and serialises it in CPLEX LP format, e.g. to
/// cross-check our solver against an external one (the paper used Gurobi,
/// which reads this format directly).
///
/// # Example
///
/// ```
/// use mfhls_core::{ilp_model, Assay, Duration, LayerProblem, Operation, TransportConfig, TransportTimes, Weights};
///
/// let mut assay = Assay::new("demo");
/// assay.add_op(Operation::new("mix").with_duration(Duration::fixed(5)));
/// let costs = mfhls_chip::CostModel::default();
/// let transport = TransportTimes::initial(&assay, &TransportConfig::default());
/// let problem = LayerProblem {
///     assay: &assay,
///     ops: assay.op_ids().collect(),
///     devices: vec![],
///     bindable: vec![],
///     max_devices: 3,
///     transport: &transport,
///     weights: Weights::default(),
///     costs: &costs,
///     existing_paths: Default::default(),
///     cross_inputs: vec![],
///     component_oriented: true,
/// };
/// let lp = ilp_model::export_lp(&problem);
/// assert!(lp.contains("Minimize"));
/// ```
pub fn export_lp(p: &LayerProblem<'_>) -> String {
    mfhls_ilp::write::to_lp_format(&build_model(p).model)
}

struct BuiltModel {
    model: Model,
    /// start variable per op (parallel to `problem.ops`).
    start: Vec<VarId>,
    /// binding variable per (op index, device index); absent = forbidden.
    bind: BTreeMap<(usize, usize), VarId>,
    /// configuration binaries per new device (device index -> 6 vars).
    conf: BTreeMap<usize, [VarId; 6]>,
    /// accessory binaries per new device.
    acc: BTreeMap<usize, [VarId; 5]>,
    n_devices: usize,
}

fn build_model(p: &LayerProblem<'_>) -> BuiltModel {
    let mut m = Model::minimize();
    let ops = &p.ops;
    let n = ops.len();
    let n_existing = p.devices.len();
    // New-device slots: the budget counts only *bindable* inherited devices
    // (masked-out D'_i slots are free for reconfiguration, §3.2), and never
    // exceeds what the layer's ops could use.
    let n_bindable = (0..n_existing)
        .filter(|&d| p.bindable.get(d).copied().unwrap_or(false))
        .count();
    let n_new = p.max_devices.saturating_sub(n_bindable).min(n);
    let n_devices = n_existing + n_new;
    let horizon = p.horizon() as f64;
    // Eq. 10 with q0 = 1 must hold for every feasible assignment:
    // st_a + M >= st_b + dur_b + t_b, worst case st_a = 0, st_b = horizon,
    // so M must exceed horizon + max(dur + t). Twice the horizon is a safe
    // and still reasonably tight choice.
    let big_m = horizon * 2.0;

    let dur = |i: usize| p.assay.op(ops[i]).duration().min_duration() as f64;
    let inside: BTreeSet<OpId> = ops.iter().copied().collect();
    // Effective transport: reserved only when the op has an in-layer child
    // (cross-layer transfers ride the barrier), mirroring the heuristic.
    let t_eff = |i: usize| {
        if p.assay.children(ops[i]).iter().any(|c| inside.contains(c)) {
            p.transport.of(ops[i]) as f64
        } else {
            0.0
        }
    };

    // ---- Device configuration (eqs. 1-4 via configuration binaries) ------
    let mut conf = BTreeMap::new();
    let mut acc = BTreeMap::new();
    for j in n_existing..n_devices {
        let c: [VarId; 6] = std::array::from_fn(|k| {
            m.binary(&format!("conf_{j}_{}{}", CONFIGS[k].0, CONFIGS[k].1))
        });
        let a: [VarId; 5] =
            std::array::from_fn(|y| m.binary(&format!("acc_{j}_{}", Accessory::ALL[y])));
        // used_j = sum conf <= 1 (a slot may stay unused).
        m.add_con(LinExpr::sum(c), Sense::Le, 1.0);
        // Accessories only on used devices.
        for &av in &a {
            m.add_con(av - LinExpr::sum(c), Sense::Le, 0.0);
        }
        conf.insert(j, c);
        acc.insert(j, a);
    }
    // Symmetry breaking: used_j >= used_{j+1}.
    for j in n_existing..n_devices.saturating_sub(1) {
        let expr = LinExpr::sum(conf[&j]) - LinExpr::sum(conf[&(j + 1)]);
        m.add_con(expr, Sense::Ge, 0.0);
    }

    // ---- Binding variables + consistence (eqs. 5-8) ----------------------
    let mut bind = BTreeMap::new();
    for (i, &op) in ops.iter().enumerate() {
        let req = p.assay.op(op).requirements();
        let mut choices = LinExpr::new();
        for j in 0..n_devices {
            if j < n_existing {
                // Existing device: compatibility is a constant.
                if !p.bindable.get(j).copied().unwrap_or(false) || !p.devices[j].satisfies(req) {
                    continue;
                }
                let v = m.binary(&format!("bind_{i}_{j}"));
                bind.insert((i, j), v);
                choices.add_term(v, 1.0);
            } else {
                let v = m.binary(&format!("bind_{i}_{j}"));
                bind.insert((i, j), v);
                choices.add_term(v, 1.0);
                // Container kind (eq. 6).
                let kind_set: Vec<VarId> = CONFIGS
                    .iter()
                    .enumerate()
                    .filter(|(_, (k, cap))| {
                        req.container.is_none_or(|rk| rk == *k)
                            && req.capacity.is_none_or(|rc| rc == *cap)
                    })
                    .map(|(k, _)| conf[&j][k])
                    .collect();
                // bind <= sum of allowed configs (also enforces "used").
                m.add_con(v - LinExpr::sum(kind_set), Sense::Le, 0.0);
                // Accessories (eq. 7).
                for a_req in req.accessories.iter() {
                    m.add_con(v - acc[&j][a_req.index()], Sense::Le, 0.0);
                }
            }
        }
        // Eq. 5: exactly one device.
        m.add_con(choices, Sense::Eq, 1.0);
    }

    // ---- Start times + dependencies (eq. 9) ------------------------------
    let start: Vec<VarId> = (0..n)
        .map(|i| m.integer(&format!("st_{i}"), 0.0, horizon))
        .collect();
    let idx_of: BTreeMap<OpId, usize> = ops.iter().enumerate().map(|(i, &o)| (o, i)).collect();
    let internal = p.internal_deps();
    for &(a, b) in &internal {
        let (ia, ib) = (idx_of[&a], idx_of[&b]);
        // st_b >= st_a + dur_a + t_a.
        m.add_con(start[ib] - start[ia], Sense::Ge, dur(ia) + t_eff(ia));
    }

    // ---- Device conflicts (eqs. 10-13) ------------------------------------
    // Skip pairs already ordered by a dependency path within the layer.
    let mut g = mfhls_graph::Digraph::new(n);
    for &(a, b) in &internal {
        g.add_edge(idx_of[&a], idx_of[&b]).expect("layer edge");
    }
    let desc = mfhls_graph::reach::all_descendants(&g);
    for a in 0..n {
        for b in a + 1..n {
            if desc[a].contains(b) || desc[b].contains(a) {
                continue;
            }
            let q0 = m.binary(&format!("q0_{a}_{b}"));
            let q1 = m.binary(&format!("q1_{a}_{b}"));
            let q2 = m.binary(&format!("q2_{a}_{b}"));
            // (10) st_a + q0 M >= st_b + dur_b + t_b.
            m.add_con(
                start[a] - start[b] + big_m * q0,
                Sense::Ge,
                dur(b) + t_eff(b),
            );
            // (11) st_a + dur_a + t_a - q1 M <= st_b.
            m.add_con(
                start[a] - start[b] - big_m * q1,
                Sense::Le,
                -(dur(a) + t_eff(a)),
            );
            // (12) per device.
            for j in 0..n_devices {
                if let (Some(&va), Some(&vb)) = (bind.get(&(a, j)), bind.get(&(b, j))) {
                    m.add_con(va + vb - q2, Sense::Le, 1.0);
                }
            }
            // (13).
            m.add_con(q0 + q1 + q2, Sense::Le, 2.0);
        }
    }

    // ---- Indeterminate-at-end (eq. 14) + exclusive devices ----------------
    let ind_idx: Vec<usize> = (0..n)
        .filter(|&i| p.assay.op(ops[i]).is_indeterminate())
        .collect();
    for &i in &ind_idx {
        for a in 0..n {
            if a != i {
                // st_a <= st_i + dur_i.
                m.add_con(start[a] - start[i], Sense::Le, dur(i));
            }
        }
    }
    for (x, &i1) in ind_idx.iter().enumerate() {
        for &i2 in &ind_idx[x + 1..] {
            for j in 0..n_devices {
                if let (Some(&v1), Some(&v2)) = (bind.get(&(i1, j)), bind.get(&(i2, j))) {
                    m.add_con(v1 + v2, Sense::Le, 1.0);
                }
            }
        }
    }

    // ---- Makespan (eq. 15) -------------------------------------------------
    let makespan = m.integer("sum_t", 0.0, horizon);
    for (i, &st) in start.iter().enumerate() {
        m.add_con(makespan - st, Sense::Ge, dur(i));
    }

    // ---- Paths (eq. 21) ----------------------------------------------------
    // One variable per device pair that could newly carry a transfer.
    let mut path_vars: BTreeMap<(usize, usize), VarId> = BTreeMap::new();
    let mut path_var = |m: &mut Model, d1: usize, d2: usize| -> Option<VarId> {
        let key = path_key(d1, d2);
        if p.existing_paths.contains(&key) {
            return None; // already paid for
        }
        Some(
            *path_vars
                .entry(key)
                .or_insert_with(|| m.binary(&format!("path_{}_{}", key.0, key.1))),
        )
    };
    for &(a, b) in &internal {
        let (ia, ib) = (idx_of[&a], idx_of[&b]);
        for d1 in 0..n_devices {
            for d2 in 0..n_devices {
                if d1 == d2 {
                    continue;
                }
                if let (Some(&va), Some(&vb)) = (bind.get(&(ia, d1)), bind.get(&(ib, d2))) {
                    if let Some(pv) = path_var(&mut m, d1, d2) {
                        m.add_con(va + vb - pv, Sense::Le, 1.0);
                    }
                }
            }
        }
    }
    for &(child, pd) in &p.cross_inputs {
        let ic = idx_of[&child];
        for d in 0..n_devices {
            if d == pd {
                continue;
            }
            if let Some(&vc) = bind.get(&(ic, d)) {
                if let Some(pv) = path_var(&mut m, pd, d) {
                    m.add_con(vc - pv, Sense::Le, 0.0);
                }
            }
        }
    }

    // ---- Objective ---------------------------------------------------------
    let w = p.weights;
    let mut obj = LinExpr::new();
    obj.add_term(makespan, w.time as f64);
    for j in n_existing..n_devices {
        for (k, &(kind, cap)) in CONFIGS.iter().enumerate() {
            let area = p.costs.container_area(kind, cap) as f64;
            let proc = p.costs.container_processing(kind, cap) as f64;
            obj.add_term(
                conf[&j][k],
                w.area as f64 * area + w.processing as f64 * proc,
            );
        }
        for (y, &a) in Accessory::ALL.iter().enumerate() {
            obj.add_term(
                acc[&j][y],
                w.processing as f64 * p.costs.accessory_processing(a) as f64,
            );
        }
    }
    for &pv in path_vars.values() {
        obj.add_term(pv, w.paths as f64);
    }
    m.set_objective(obj);

    BuiltModel {
        model: m,
        start,
        bind,
        conf,
        acc,
        n_devices,
    }
}

fn decode(
    p: &LayerProblem<'_>,
    built: &BuiltModel,
    sol: &mfhls_ilp::MilpSolution,
    stats: crate::SolverStats,
) -> LayerSolution {
    let n_existing = p.devices.len();
    // Realised new-device configs.
    let mut devices: Vec<DeviceConfig> = p.devices.clone();
    let mut created: Vec<usize> = Vec::new();
    let mut slot_to_global: BTreeMap<usize, usize> = (0..n_existing).map(|j| (j, j)).collect();
    for j in n_existing..built.n_devices {
        let Some(k) = (0..6).find(|&k| sol.is_one(built.conf[&j][k])) else {
            continue; // unused slot
        };
        let (kind, cap) = CONFIGS[k];
        let accessories = Accessory::ALL
            .into_iter()
            .filter(|a| sol.is_one(built.acc[&j][a.index()]))
            .collect();
        let cfg = DeviceConfig::new(kind, cap, accessories).expect("CONFIGS are fabricable");
        let g = devices.len();
        devices.push(cfg);
        created.push(g);
        slot_to_global.insert(j, g);
    }

    let inside: BTreeSet<OpId> = p.ops.iter().copied().collect();
    let slots: Vec<ScheduledOp> = p
        .ops
        .iter()
        .enumerate()
        .map(|(i, &op)| {
            let j = (0..built.n_devices)
                .find(|&j| built.bind.get(&(i, j)).is_some_and(|&v| sol.is_one(v)))
                .expect("eq. 5 guarantees one binding");
            let device = slot_to_global[&j];
            let has_internal_child = p.assay.children(op).iter().any(|c| inside.contains(c));
            ScheduledOp {
                op,
                device,
                start: sol.value(built.start[i]).round() as u64,
                duration: p.assay.op(op).duration().min_duration(),
                transport: if has_internal_child {
                    p.transport.of(op)
                } else {
                    0
                },
            }
        })
        .collect();

    // Recompute paths from the realised binding (robust against slack in
    // the path variables, which the objective pushes to 0 anyway).
    let device_of: BTreeMap<OpId, usize> = slots.iter().map(|s| (s.op, s.device)).collect();
    let mut new_paths = BTreeSet::new();
    for (a, b) in p.internal_deps() {
        let (da, db) = (device_of[&a], device_of[&b]);
        if da != db {
            let k = path_key(da, db);
            if !p.existing_paths.contains(&k) {
                new_paths.insert(k);
            }
        }
    }
    for &(child, pd) in &p.cross_inputs {
        let dc = device_of[&child];
        if dc != pd {
            let k = path_key(pd, dc);
            if !p.existing_paths.contains(&k) {
                new_paths.insert(k);
            }
        }
    }

    // Cost the solution with the same formula as the heuristic, so Hybrid
    // comparisons are apples-to-apples.
    let makespan = slots
        .iter()
        .map(|s| s.start + s.duration)
        .max()
        .unwrap_or(0);
    let w = p.weights;
    let mut area = 0u64;
    let mut proc = 0u64;
    for &d in &created {
        area += p.costs.device_area(&devices[d]);
        proc += p.costs.device_processing(&devices[d]);
    }
    let objective =
        w.time * makespan + w.area * area + w.processing * proc + w.paths * new_paths.len() as u64;

    LayerSolution {
        slots,
        devices,
        new_devices: created,
        new_paths,
        objective,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        Assay, Duration, HybridSchedule, LayerSchedule, Operation, TransportConfig, TransportTimes,
        Weights,
    };
    use mfhls_chip::CostModel;

    fn problem_for<'a>(
        assay: &'a Assay,
        costs: &'a CostModel,
        transport: &'a TransportTimes,
        max_devices: usize,
    ) -> LayerProblem<'a> {
        LayerProblem {
            assay,
            ops: assay.op_ids().collect(),
            devices: vec![],
            bindable: vec![],
            max_devices,
            transport,
            weights: Weights::default(),
            costs,
            existing_paths: BTreeSet::new(),
            cross_inputs: vec![],
            component_oriented: true,
        }
    }

    fn as_schedule(sol: &LayerSolution) -> HybridSchedule {
        HybridSchedule {
            layers: vec![LayerSchedule::new(sol.slots.clone())],
            devices: sol.devices.clone(),
            paths: sol.new_paths.clone(),
        }
    }

    #[test]
    fn single_op_exact() {
        let mut a = Assay::new("t");
        a.add_op(Operation::new("x").with_duration(Duration::fixed(5)));
        let costs = CostModel::default();
        let tr = TransportTimes::initial(&a, &TransportConfig::default());
        let p = problem_for(&a, &costs, &tr, 3);
        let sol = IlpLayerSolver::default().solve(&p).unwrap();
        assert_eq!(sol.makespan(), 5);
        assert_eq!(sol.devices.len(), 1);
        as_schedule(&sol).validate(&a).unwrap();
    }

    #[test]
    fn two_parallel_ops_share_or_split_optimally() {
        // Two independent 5-minute ops. One chamber: makespan 10; two
        // chambers: makespan 5 but extra capex. With default weights
        // (time 20 * 5 saved = 100 > chamber capex 2*4+1*3 = 11), the solver
        // should parallelise.
        let mut a = Assay::new("t");
        a.add_op(Operation::new("x").with_duration(Duration::fixed(5)));
        a.add_op(Operation::new("y").with_duration(Duration::fixed(5)));
        let costs = CostModel::default();
        let tr = TransportTimes::initial(&a, &TransportConfig::default());
        let p = problem_for(&a, &costs, &tr, 4);
        let sol = IlpLayerSolver::default().solve(&p).unwrap();
        assert_eq!(sol.makespan(), 5);
        assert_eq!(sol.devices.len(), 2);
        as_schedule(&sol).validate(&a).unwrap();
    }

    #[test]
    fn chain_on_one_device_avoids_transport() {
        let mut a = Assay::new("t");
        let x = a.add_op(Operation::new("x").with_duration(Duration::fixed(5)));
        let y = a.add_op(Operation::new("y").with_duration(Duration::fixed(5)));
        a.add_dependency(x, y).unwrap();
        let costs = CostModel::default();
        let tr = TransportTimes::initial(&a, &TransportConfig::default());
        let p = problem_for(&a, &costs, &tr, 4);
        let sol = IlpLayerSolver::default().solve(&p).unwrap();
        // Same device avoids a second device and a path. Eq. 9 still
        // charges the initial per-op transport estimate (3), which only a
        // later refinement pass can zero out: makespan = 5 + 3 + 5.
        assert_eq!(sol.devices.len(), 1);
        assert_eq!(sol.makespan(), 13);
        assert!(sol.new_paths.is_empty());
        as_schedule(&sol).validate(&a).unwrap();
    }

    #[test]
    fn indeterminate_scheduled_last() {
        let mut a = Assay::new("t");
        let prep = a.add_op(Operation::new("prep").with_duration(Duration::fixed(4)));
        let cap = a.add_op(Operation::new("capture").with_duration(Duration::at_least(3)));
        a.add_dependency(prep, cap).unwrap();
        let costs = CostModel::default();
        let tr = TransportTimes::initial(&a, &TransportConfig::default());
        let p = problem_for(&a, &costs, &tr, 4);
        let sol = IlpLayerSolver::default().solve(&p).unwrap();
        as_schedule(&sol).validate(&a).unwrap();
        let sc = sol.slots.iter().find(|s| s.op == cap).unwrap();
        let sp = sol.slots.iter().find(|s| s.op == prep).unwrap();
        assert!(sc.start >= sp.start + 4);
    }

    #[test]
    fn conventional_mode_is_rejected() {
        let mut a = Assay::new("t");
        a.add_op(Operation::new("x").with_duration(Duration::fixed(1)));
        let costs = CostModel::default();
        let tr = TransportTimes::initial(&a, &TransportConfig::default());
        let mut p = problem_for(&a, &costs, &tr, 2);
        p.component_oriented = false;
        assert!(matches!(
            IlpLayerSolver::default().solve(&p),
            Err(CoreError::Ilp(_))
        ));
    }

    #[test]
    fn infeasible_budget_errors() {
        let mut a = Assay::new("t");
        a.add_op(Operation::new("x").with_duration(Duration::fixed(1)));
        let costs = CostModel::default();
        let tr = TransportTimes::initial(&a, &TransportConfig::default());
        let p = problem_for(&a, &costs, &tr, 0);
        assert!(IlpLayerSolver::default().solve(&p).is_err());
    }

    #[test]
    fn inherited_device_is_reused_for_free() {
        use mfhls_chip::{Accessory, AccessorySet};
        // One op needing a pump; an inherited pump chamber exists. Creating
        // a new device would cost area+processing, so the ILP must reuse.
        let mut a = Assay::new("t");
        a.add_op(
            Operation::new("x")
                .accessory(Accessory::Pump)
                .with_duration(Duration::fixed(5)),
        );
        let costs = CostModel::default();
        let tr = TransportTimes::initial(&a, &TransportConfig::default());
        let inherited = mfhls_chip::DeviceConfig::new(
            mfhls_chip::ContainerKind::Chamber,
            mfhls_chip::Capacity::Small,
            AccessorySet::from_iter([Accessory::Pump]),
        )
        .unwrap();
        let mut p = problem_for(&a, &costs, &tr, 5);
        p.devices = vec![inherited];
        p.bindable = vec![true];
        let sol = IlpLayerSolver::default().solve(&p).unwrap();
        assert_eq!(sol.slots[0].device, 0);
        assert!(sol.new_devices.is_empty());
        // Masked out, the same device must not be used.
        p.bindable = vec![false];
        let sol = IlpLayerSolver::default().solve(&p).unwrap();
        assert_eq!(sol.new_devices.len(), 1);
        assert_ne!(sol.slots[0].device, 0);
    }

    #[test]
    fn cross_input_pulls_child_onto_parent_device() {
        // The child's only constraint is a cross-layer parent on device 0;
        // binding to device 0 avoids a path (and a new device).
        let mut a = Assay::new("t");
        a.add_op(Operation::new("child").with_duration(Duration::fixed(4)));
        let costs = CostModel::default();
        let tr = TransportTimes::initial(&a, &TransportConfig::default());
        let parent_dev = mfhls_chip::DeviceConfig::new(
            mfhls_chip::ContainerKind::Chamber,
            mfhls_chip::Capacity::Small,
            Default::default(),
        )
        .unwrap();
        let mut p = problem_for(&a, &costs, &tr, 5);
        p.devices = vec![parent_dev];
        p.bindable = vec![true];
        p.cross_inputs = vec![(OpId(0), 0)];
        let sol = IlpLayerSolver::default().solve(&p).unwrap();
        assert_eq!(sol.slots[0].device, 0);
        assert!(sol.new_paths.is_empty());
    }

    #[test]
    fn existing_paths_are_free_to_reuse() {
        // Two chained ops that must use different devices (different
        // capacity classes). If the path between the two inherited devices
        // already exists, the solution reports no new paths.
        use mfhls_chip::Capacity;
        let mut a = Assay::new("t");
        let x = a.add_op(
            Operation::new("x")
                .capacity(Capacity::Medium)
                .with_duration(Duration::fixed(3)),
        );
        let y = a.add_op(
            Operation::new("y")
                .capacity(Capacity::Tiny)
                .with_duration(Duration::fixed(3)),
        );
        a.add_dependency(x, y).unwrap();
        let costs = CostModel::default();
        let tr = TransportTimes::initial(&a, &TransportConfig::default());
        let d0 = mfhls_chip::DeviceConfig::new(
            mfhls_chip::ContainerKind::Chamber,
            Capacity::Medium,
            Default::default(),
        )
        .unwrap();
        let d1 = mfhls_chip::DeviceConfig::new(
            mfhls_chip::ContainerKind::Chamber,
            Capacity::Tiny,
            Default::default(),
        )
        .unwrap();
        let mut p = problem_for(&a, &costs, &tr, 4);
        p.devices = vec![d0, d1];
        p.bindable = vec![true, true];
        p.existing_paths = [(0usize, 1usize)].into_iter().collect();
        let sol = IlpLayerSolver::default().solve(&p).unwrap();
        assert!(sol.new_paths.is_empty(), "{:?}", sol.new_paths);
        as_schedule(&sol);
    }

    #[test]
    fn cutoff_below_optimum_errors() {
        let mut a = Assay::new("t");
        a.add_op(Operation::new("x").with_duration(Duration::fixed(5)));
        let costs = CostModel::default();
        let tr = TransportTimes::initial(&a, &TransportConfig::default());
        let p = problem_for(&a, &costs, &tr, 3);
        let optimal = IlpLayerSolver::default().solve(&p).unwrap();
        let bounded = IlpLayerSolver {
            cutoff: Some(optimal.objective), // must beat it strictly
            ..IlpLayerSolver::default()
        };
        assert!(bounded.solve(&p).is_err());
        let loose = IlpLayerSolver {
            cutoff: Some(optimal.objective + 1),
            ..IlpLayerSolver::default()
        };
        assert_eq!(loose.solve(&p).unwrap().objective, optimal.objective);
    }

    #[test]
    fn matches_heuristic_or_better_on_small_layers() {
        use crate::heuristic::HeuristicLayerSolver;
        use crate::LayerSolver as _;
        // A few hand-rolled small layers; ILP must never be worse.
        for seed in 0..4u64 {
            let mut a = Assay::new("t");
            let n = 3 + (seed as usize % 2);
            let ids: Vec<_> = (0..n)
                .map(|k| {
                    a.add_op(
                        Operation::new(&format!("o{k}"))
                            .with_duration(Duration::fixed(2 + (k as u64 * seed) % 5)),
                    )
                })
                .collect();
            for k in 1..n {
                if (k + seed as usize).is_multiple_of(2) {
                    a.add_dependency(ids[k - 1], ids[k]).unwrap();
                }
            }
            let costs = CostModel::default();
            let tr = TransportTimes::initial(&a, &TransportConfig::default());
            let p = problem_for(&a, &costs, &tr, 6);
            let exact = IlpLayerSolver::default().solve(&p).unwrap();
            let heur = HeuristicLayerSolver::default().solve(&p).unwrap();
            assert!(
                exact.objective <= heur.objective,
                "seed {seed}: exact {} > heuristic {}",
                exact.objective,
                heur.objective
            );
            as_schedule(&exact).validate(&a).unwrap();
        }
    }
}
