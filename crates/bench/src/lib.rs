//! Shared harness code for the table/ablation binaries.
//!
//! Every binary prints the same rows/series as the corresponding table of
//! the paper (`cargo run --release -p mfhls-bench --bin table2`, …); the
//! [`timing`]-based benches in `benches/` time the underlying algorithms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod report;
pub mod timing;

use mfhls_core::{Assay, SynthConfig, SynthesisResult, Synthesizer};

/// One side (ours or conventional) of a Table 2 row.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Execution time string in the paper's format (e.g. `244m+I1`).
    pub exec: String,
    /// Devices used (`#D.`).
    pub devices: usize,
    /// Transportation paths (`#P.`).
    pub paths: usize,
    /// Program runtime.
    pub runtime: std::time::Duration,
    /// The full synthesis result, for further inspection.
    pub result: SynthesisResult,
}

/// Runs the component-oriented flow on `assay`.
///
/// # Panics
///
/// Panics if synthesis fails — the benchmark assays are all synthesizable.
pub fn run_ours(assay: &Assay, config: SynthConfig) -> CaseResult {
    let result = Synthesizer::new(config)
        .run(assay)
        .expect("benchmark assay must synthesize");
    case_result(assay, result)
}

/// Runs the modified conventional baseline on `assay`.
///
/// # Panics
///
/// Panics if synthesis fails.
pub fn run_conventional(assay: &Assay, config: SynthConfig) -> CaseResult {
    let result =
        mfhls_core::conventional::run(assay, config).expect("benchmark assay must synthesize");
    case_result(assay, result)
}

fn case_result(assay: &Assay, result: SynthesisResult) -> CaseResult {
    CaseResult {
        exec: result.schedule.exec_time(assay).to_string(),
        devices: result.schedule.used_device_count(),
        paths: result.schedule.path_count(),
        runtime: result.runtime,
        result,
    }
}

/// Captures an execution trace of a benchmark run when the
/// `MFHLS_TRACE_OUT` environment variable names an output path.
///
/// Construct one at the top of a benchmark `main`; the trace is written as
/// JSONL (schema `mfhls-obs/v1`, see `mfhls trace-check`) when the guard
/// drops. Recording is thread-local to the constructing thread, so work the
/// harness dispatches to pool workers is not recorded — the trace covers
/// the sequential driver portion of the run.
pub struct EnvTrace {
    path: Option<String>,
}

impl EnvTrace {
    /// Starts a capture if `MFHLS_TRACE_OUT` is set and non-empty.
    #[must_use]
    pub fn from_env() -> Self {
        let path = std::env::var("MFHLS_TRACE_OUT")
            .ok()
            .filter(|p| !p.is_empty());
        if path.is_some() {
            mfhls_obs::start_capture(mfhls_obs::CaptureConfig::default());
        }
        EnvTrace { path }
    }
}

impl Drop for EnvTrace {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else { return };
        if let Some(trace) = mfhls_obs::finish_capture() {
            match std::fs::write(&path, trace.to_jsonl()) {
                Ok(()) => eprintln!("trace: {} records written to {path}", trace.len()),
                Err(e) => eprintln!("trace: cannot write {path}: {e}"),
            }
        }
    }
}

/// Formats a duration the way the paper's Runtime column does
/// (`5.531s` / `5m12s`).
pub fn fmt_runtime(d: std::time::Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 60.0 {
        format!("{}m{:.0}s", (secs / 60.0) as u64, secs % 60.0)
    } else {
        format!("{secs:.3}s")
    }
}

/// Prints a Markdown-ish table: a header row and aligned value rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (k, cell) in row.iter().enumerate() {
            widths[k] = widths[k].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row.clone());
    }
}
