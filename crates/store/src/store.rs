//! The crash-safe persistent solution store.
//!
//! See the crate docs for the big picture; this module holds
//! [`SolutionStore`] — open/scan/quarantine, warm-load, append with
//! rotation, read-through fetch — and its degradation state machine.
//!
//! # Crash-consistency protocol
//!
//! * Segments are **append-only**; records are framed with a length and a
//!   checksum over framing + payload ([`crate::format`]).
//! * New segments are created atomically (write-temp → fsync → rename via
//!   [`StoreIo::write_atomic`]), so a segment either exists with a valid
//!   header or not at all.
//! * A crash (or SIGKILL) mid-append leaves a *torn tail*: detected at
//!   the next open by the scanner, truncated back to the last clean
//!   record, and counted as quarantined. Nothing before the tail is
//!   affected.
//! * Any write-path fault (short write, `ENOSPC`, sync failure) rolls the
//!   segment back to its pre-write length when possible and flips the
//!   store into **degraded** (memory-only) mode: every later append is
//!   dropped and counted, no error ever reaches a caller's response path,
//!   and the next process start gets a clean store again.
//! * Read-path faults at open (unreadable or misheadered segments)
//!   quarantine that segment and keep loading the rest.

use crate::error::{CorruptKind, StoreError, StoreOp};
use crate::format::{
    empty_segment, encode_record, scan_segment, CanonicalParts, SolutionRecord, SEGMENT_MAGIC_V2,
};
use crate::io::StoreIo;
use mfhls_core::{
    CacheBacking, CacheContext, CanonicalLayerKey, LayerKey, LayerSolution, OpId, SharedLayerCache,
};
use mfhls_obs as obs;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Tuning knobs of a [`SolutionStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Rotate to a fresh segment once the active one exceeds this many
    /// bytes (the bound is per segment, not per store).
    pub max_segment_bytes: u64,
    /// Fsync the active segment after every append. Off trades crash
    /// durability of the most recent appends for throughput; the format
    /// stays torn-tail-safe either way.
    pub sync_on_append: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            max_segment_bytes: 4 << 20,
            sync_on_append: true,
        }
    }
}

/// Counters and state of a [`SolutionStore`], for summaries and tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreStats {
    /// Records successfully loaded at open.
    pub loaded: u64,
    /// Corrupt records (checksum/payload/framing failures and torn
    /// tails) detected at load and skipped.
    pub quarantined: u64,
    /// Whole segments skipped (unreadable, or header unrecognisable).
    pub quarantined_segments: u64,
    /// Records appended by this process.
    pub appended: u64,
    /// Appends dropped because the store was degraded.
    pub dropped: u64,
    /// Read-through fetches that found a persisted solution.
    pub hits: u64,
    /// Read-through fetches that found nothing.
    pub misses: u64,
    /// Segment files seen at open (including quarantined ones).
    pub segments: u64,
    /// Entries currently indexed (loaded + appended, deduplicated).
    pub entries: usize,
    /// Whether the store has degraded to memory-only operation.
    pub degraded: bool,
    /// The fault that caused degradation (or the most recent load-time
    /// error when not degraded), rendered.
    pub last_error: Option<String>,
}

/// One live (loaded or appended) entry.
#[derive(Debug)]
struct Entry {
    context: CacheContext,
    key: LayerKey,
    solution: LayerSolution,
    /// `Some` for entries persisted as kind-2 (v2) records; `None` for
    /// entries a v1 writer persisted, which serve exact lookups only.
    canonical: Option<CanonicalParts>,
}

#[derive(Debug, Default)]
struct Inner {
    /// `(context canonical form, key) -> index into records`.
    index: HashMap<(String, LayerKey), usize>,
    /// Content address (`canon` bytes) -> indices into records. A bucket
    /// can hold several entries (distinct layers the canonical hash could
    /// not separate); the `positional` bytes gate which one, if any, an
    /// incoming lookup may reuse.
    canon: HashMap<Vec<u8>, Vec<usize>>,
    /// Every live entry, in load-then-append order (warm-load replays
    /// this order, which is deterministic for a given disk image).
    records: Vec<Entry>,
    /// Path of the segment appends currently go to.
    active: PathBuf,
    /// Byte length of the active segment.
    active_len: u64,
    /// Sequence number of the active segment.
    active_seq: u64,
    /// `Some` once a write-path fault flipped the store to memory-only.
    degraded: Option<StoreError>,
    stats: StoreStats,
}

/// The persistent, crash-safe, append-only solution store. Open one per
/// store directory; share it behind an [`Arc`] (it is internally
/// synchronised). Implements [`CacheBacking`], so attaching it to a
/// [`SharedLayerCache`] makes the cache read through and write behind.
#[derive(Debug)]
pub struct SolutionStore {
    dir: PathBuf,
    config: StoreConfig,
    io: Arc<dyn StoreIo>,
    inner: Mutex<Inner>,
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("segment-{seq:05}.mfs"))
}

/// Parses `segment-NNNNN.mfs` back to `NNNNN`; anything else (temp files,
/// strangers) is ignored by the scanner.
fn segment_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let rest = name.strip_prefix("segment-")?.strip_suffix(".mfs")?;
    rest.parse().ok()
}

impl SolutionStore {
    /// Opens (creating if needed) the store in `dir`. Never fails: any
    /// fault at open — unreadable directory, unreadable segments, corrupt
    /// records — is quarantined or degrades the store to memory-only
    /// operation, visible through [`SolutionStore::stats`]. A degraded
    /// store still answers fetches for whatever it managed to load.
    pub fn open(
        dir: impl Into<PathBuf>,
        config: StoreConfig,
        io: Arc<dyn StoreIo>,
    ) -> SolutionStore {
        let dir = dir.into();
        let store = SolutionStore {
            dir,
            config,
            io,
            inner: Mutex::new(Inner::default()),
        };
        store.load();
        store
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn load(&self) {
        let mut inner = self.locked();
        if let Err(e) = self.io.create_dir_all(&self.dir) {
            degrade(&mut inner, StoreError::io(StoreOp::Scan, &self.dir, &e));
            return;
        }
        let paths = match self.io.list(&self.dir) {
            Ok(p) => p,
            Err(e) => {
                degrade(&mut inner, StoreError::io(StoreOp::Scan, &self.dir, &e));
                return;
            }
        };
        let mut segments: Vec<(u64, PathBuf)> = paths
            .into_iter()
            .filter_map(|p| segment_seq(&p).map(|seq| (seq, p)))
            .collect();
        segments.sort();
        inner.stats.segments = segments.len() as u64;

        let mut max_seq = 0;
        for &(seq, ref path) in &segments {
            max_seq = max_seq.max(seq);
            let bytes = match self.io.read(path) {
                Ok(b) => b,
                Err(e) => {
                    inner.stats.quarantined_segments += 1;
                    let err = StoreError::io(StoreOp::Read, path, &e);
                    inner.stats.last_error = Some(err.to_string());
                    obs::diagnostic_counter("store_quarantined", 1);
                    continue;
                }
            };
            let scan = match scan_segment(&bytes) {
                Ok(s) => s,
                Err(kind) => {
                    inner.stats.quarantined_segments += 1;
                    let err = StoreError::Corrupt {
                        path: path.display().to_string(),
                        offset: 0,
                        kind,
                    };
                    inner.stats.last_error = Some(err.to_string());
                    obs::diagnostic_counter("store_quarantined", 1);
                    continue;
                }
            };
            for &(offset, ref kind) in &scan.quarantined {
                inner.stats.quarantined += 1;
                inner.stats.last_error = Some(
                    StoreError::Corrupt {
                        path: path.display().to_string(),
                        offset,
                        kind: kind.clone(),
                    }
                    .to_string(),
                );
                obs::diagnostic_counter("store_quarantined", 1);
            }
            if let Some(offset) = scan.torn_tail_at {
                inner.stats.quarantined += 1;
                inner.stats.last_error = Some(
                    StoreError::Corrupt {
                        path: path.display().to_string(),
                        offset,
                        kind: CorruptKind::TornTail,
                    }
                    .to_string(),
                );
                obs::diagnostic_counter("store_quarantined", 1);
            }
            for rec in scan.records {
                inner.stats.loaded += 1;
                index_record(&mut inner, rec);
            }
            if seq == segments.last().map(|&(s, _)| s).unwrap_or(seq) {
                // The active (latest) segment: roll any torn tail back so
                // appends resume from a clean boundary.
                inner.active = path.clone();
                inner.active_seq = seq;
                inner.active_len = scan.clean_len;
                if scan.torn_tail_at.is_some() || scan.clean_len < bytes.len() as u64 {
                    if let Err(e) = self.io.truncate(path, scan.clean_len) {
                        // Cannot clean the tail: appending after it would
                        // desync the segment, so rotate away from it.
                        let err = StoreError::io(StoreOp::Truncate, path, &e);
                        inner.stats.last_error = Some(err.to_string());
                        if !rotate(&mut inner, &*self.io, &self.dir, max_seq + 1) {
                            return;
                        }
                        max_seq += 1;
                    }
                }
            }
        }
        inner.stats.entries = inner.index.len();
        obs::diagnostic_counter("store_loaded", inner.stats.loaded as i64);

        if segments.is_empty() {
            // Fresh store: create the first segment atomically.
            rotate(&mut inner, &*self.io, &self.dir, 1);
            inner.stats.segments = 1;
        } else if inner.active.as_os_str().is_empty() {
            // Every segment (including the latest) was quarantined before
            // one could become active: appends need a real target, so
            // start a fresh segment after the highest existing sequence.
            if rotate(&mut inner, &*self.io, &self.dir, max_seq + 1) {
                inner.stats.segments += 1;
            }
        }
    }

    /// Replays every loaded entry into `cache` (bulk warm-load). Call
    /// *before* [`SharedLayerCache::set_backing`] so the load is not
    /// re-persisted. Returns how many entries were offered.
    pub fn warm_into(&self, cache: &SharedLayerCache) -> u64 {
        let inner = self.locked();
        for e in &inner.records {
            let ck = e.canonical.as_ref().map(|c| {
                CanonicalLayerKey::from_raw(
                    c.canon.clone(),
                    c.positional.clone(),
                    e.key.to_parts().ops,
                )
            });
            cache.warm_load(&e.context, e.key.clone(), ck.as_ref(), e.solution.clone());
        }
        inner.records.len() as u64
    }

    /// Returns the persisted solution for `(context, key)`, if any.
    pub fn fetch(&self, context: &CacheContext, key: &LayerKey) -> Option<LayerSolution> {
        let mut inner = self.locked();
        let probe = (context.as_str().to_owned(), key.clone());
        match inner.index.get(&probe).copied() {
            Some(at) => {
                inner.stats.hits += 1;
                obs::diagnostic_counter("store_hit", 1);
                Some(inner.records[at].solution.clone())
            }
            None => {
                inner.stats.misses += 1;
                obs::diagnostic_counter("store_miss", 1);
                None
            }
        }
    }

    /// Returns a persisted solution whose canonical key matches
    /// `canonical` — same content address *and* same positional (exactness
    /// gate) bytes — with the op list its slots refer to. Only kind-2
    /// entries participate; a directory written entirely by a v1 process
    /// always misses here until its entries are re-persisted.
    pub fn fetch_canonical(
        &self,
        canonical: &CanonicalLayerKey,
    ) -> Option<(Vec<OpId>, LayerSolution)> {
        let mut inner = self.locked();
        let found = inner.canon.get(canonical.canon_bytes()).and_then(|bucket| {
            bucket.iter().copied().find(|&at| {
                inner.records[at]
                    .canonical
                    .as_ref()
                    .is_some_and(|c| c.positional.as_slice() == canonical.positional_bytes())
            })
        });
        match found {
            Some(at) => {
                inner.stats.hits += 1;
                obs::diagnostic_counter("store_hit", 1);
                let e = &inner.records[at];
                Some((e.key.to_parts().ops, e.solution.clone()))
            }
            None => {
                inner.stats.misses += 1;
                obs::diagnostic_counter("store_miss", 1);
                None
            }
        }
    }

    /// Persists one solution. Deduplicates against everything already
    /// stored; rotates segments as they fill.
    ///
    /// # Errors
    ///
    /// Returns the typed fault when the write path fails — and flips the
    /// store into degraded (memory-only) mode, so callers that ignore the
    /// error (like the [`CacheBacking`] hook) still behave correctly:
    /// every later append is silently dropped and counted.
    pub fn append(
        &self,
        context: &CacheContext,
        key: &LayerKey,
        canonical: Option<&CanonicalLayerKey>,
        solution: &LayerSolution,
    ) -> Result<(), StoreError> {
        let mut inner = self.locked();
        if let Some(cause) = inner.degraded.as_ref().map(|e| e.to_string()) {
            inner.stats.dropped += 1;
            return Err(StoreError::Degraded { cause });
        }
        let parts = canonical.map(|c| CanonicalParts {
            canon: c.canon_bytes().to_vec(),
            positional: c.positional_bytes().to_vec(),
        });
        let probe = (context.as_str().to_owned(), key.clone());
        if let Some(&at) = inner.index.get(&probe) {
            if parts.is_none() || inner.records[at].canonical.is_some() {
                return Ok(());
            }
            // A v1-era entry being re-persisted with its canonical key:
            // fall through and append it again as a kind-2 record, so the
            // canonical index survives a reload (`index_record_parts`
            // merges the duplicate instead of double-counting it).
        }
        let framed = encode_record(&SolutionRecord {
            context: context.as_str().to_owned(),
            key: key.to_parts(),
            solution: solution.clone(),
            canonical: parts.clone(),
        });
        if inner.active_len + framed.len() as u64 > self.config.max_segment_bytes
            && inner.active_len > SEGMENT_MAGIC_V2.len() as u64
        {
            let next = inner.active_seq + 1;
            if !rotate(&mut inner, &*self.io, &self.dir, next) {
                inner.stats.dropped += 1;
                return Err(self.degraded_error(&inner));
            }
            inner.stats.segments += 1;
        }
        let pre_len = inner.active_len;
        let path = inner.active.clone();
        let fault = match self.io.append(&path, &framed) {
            Ok(n) if n == framed.len() => {
                if self.config.sync_on_append {
                    match self.io.sync(&path) {
                        Ok(()) => None,
                        Err(e) => Some(StoreError::io(StoreOp::Sync, &path, &e)),
                    }
                } else {
                    None
                }
            }
            Ok(n) => Some(StoreError::ShortWrite {
                path: path.display().to_string(),
                written: n,
                expected: framed.len(),
            }),
            Err(e) => Some(StoreError::io(StoreOp::Append, &path, &e)),
        };
        match fault {
            None => {
                inner.active_len += framed.len() as u64;
                inner.stats.appended += 1;
                index_record_parts(
                    &mut inner,
                    context.clone(),
                    key.clone(),
                    solution.clone(),
                    parts,
                );
                inner.stats.entries = inner.index.len();
                obs::diagnostic_counter("store_appended", 1);
                Ok(())
            }
            Some(err) => {
                // Roll the segment back so the partial record never
                // reaches a future load; if even that fails the torn tail
                // is quarantined at the next open. Either way this store
                // is done writing.
                let _ = self.io.truncate(&path, pre_len);
                degrade(&mut inner, err.clone());
                Err(err)
            }
        }
    }

    /// Whether the store has degraded to memory-only operation.
    pub fn is_degraded(&self) -> bool {
        self.locked().degraded.is_some()
    }

    /// Current counters and state.
    pub fn stats(&self) -> StoreStats {
        let inner = self.locked();
        let mut stats = inner.stats.clone();
        stats.degraded = inner.degraded.is_some();
        stats.entries = inner.index.len();
        stats
    }
}

/// One-line summary of store state for the serve loop's stderr report.
impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} loaded, {} appended, {} quarantined",
            self.loaded,
            self.appended,
            self.quarantined + self.quarantined_segments,
        )?;
        if self.dropped > 0 {
            write!(f, ", {} dropped", self.dropped)?;
        }
        if self.degraded {
            write!(
                f,
                "; DEGRADED to memory-only ({})",
                self.last_error.as_deref().unwrap_or("unknown fault")
            )?;
        }
        Ok(())
    }
}

fn degrade(inner: &mut Inner, err: StoreError) {
    if inner.degraded.is_none() {
        let cause = err.to_string();
        obs::diagnostic_counter("store_degraded", 1);
        obs::event(
            obs::Level::Warn,
            "store.degraded",
            &[("cause", obs::Value::Str(&cause))],
        );
        inner.stats.last_error = Some(cause);
        inner.degraded = Some(err);
    }
}

impl SolutionStore {
    fn degraded_error(&self, inner: &Inner) -> StoreError {
        StoreError::Degraded {
            cause: inner
                .degraded
                .as_ref()
                .map(|e| e.to_string())
                .unwrap_or_else(|| "unknown".to_owned()),
        }
    }
}

/// Creates segment `seq` atomically and makes it active. On failure the
/// store degrades; returns whether rotation succeeded.
fn rotate(inner: &mut Inner, io: &dyn StoreIo, dir: &Path, seq: u64) -> bool {
    let path = segment_path(dir, seq);
    match io.write_atomic(&path, &empty_segment()) {
        Ok(()) => {
            inner.active = path;
            inner.active_seq = seq;
            inner.active_len = SEGMENT_MAGIC_V2.len() as u64;
            true
        }
        Err(e) => {
            degrade(inner, StoreError::io(StoreOp::Rotate, &path, &e));
            false
        }
    }
}

fn index_record(inner: &mut Inner, rec: SolutionRecord) {
    let context = CacheContext::from_canonical(&rec.context);
    let key = LayerKey::from_parts(rec.key);
    index_record_parts(inner, context, key, rec.solution, rec.canonical);
}

fn index_record_parts(
    inner: &mut Inner,
    context: CacheContext,
    key: LayerKey,
    solution: LayerSolution,
    canonical: Option<CanonicalParts>,
) {
    let probe = (context.as_str().to_owned(), key.clone());
    if let Some(&at) = inner.index.get(&probe) {
        // Duplicate (e.g. the same key persisted by two past processes):
        // all solvers are deterministic, so the payloads are identical —
        // keep the first. One exception: a kind-2 duplicate of a v1-era
        // entry upgrades it in place, adopting the canonical key.
        if inner.records[at].canonical.is_none() {
            if let Some(c) = canonical {
                inner.canon.entry(c.canon.clone()).or_default().push(at);
                inner.records[at].canonical = Some(c);
            }
        }
        return;
    }
    let at = inner.records.len();
    if let Some(c) = &canonical {
        inner.canon.entry(c.canon.clone()).or_default().push(at);
    }
    inner.records.push(Entry {
        context,
        key,
        solution,
        canonical,
    });
    inner.index.insert(probe, at);
}

impl CacheBacking for SolutionStore {
    fn fetch(&self, context: &CacheContext, key: &LayerKey) -> Option<LayerSolution> {
        SolutionStore::fetch(self, context, key)
    }

    fn persist(&self, context: &CacheContext, key: &LayerKey, solution: &LayerSolution) {
        // Write-behind is fire-and-forget by contract: a failure has
        // already flipped the store to degraded and been counted.
        let _ = self.append(context, key, None, solution);
    }

    fn fetch_canonical(&self, canonical: &CanonicalLayerKey) -> Option<(Vec<OpId>, LayerSolution)> {
        SolutionStore::fetch_canonical(self, canonical)
    }

    fn persist_canonical(
        &self,
        context: &CacheContext,
        key: &LayerKey,
        canonical: &CanonicalLayerKey,
        solution: &LayerSolution,
    ) {
        let _ = self.append(context, key, Some(canonical), solution);
    }
}
