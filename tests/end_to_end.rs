//! Cross-crate integration tests: the full pipeline on the paper's
//! benchmark assays, checking both hard invariants (validation) and the
//! qualitative shape of Table 2.

use mfhls::core::conventional;
use mfhls::sim::{simulate_hybrid, SimConfig};
use mfhls::{SolverKind, SynthConfig, Synthesizer};

#[test]
fn table2_shape_holds() {
    for (case, _, assay) in mfhls::assays::benchmarks() {
        let ours = Synthesizer::new(SynthConfig::default())
            .run(&assay)
            .unwrap_or_else(|e| panic!("case {case} ours: {e}"));
        let conv = conventional::run(&assay, SynthConfig::default())
            .unwrap_or_else(|e| panic!("case {case} conv: {e}"));
        ours.schedule.validate(&assay).unwrap();
        conv.schedule.validate(&assay).unwrap();

        let ours_t = ours.schedule.exec_time(&assay);
        let conv_t = conv.schedule.exec_time(&assay);
        // Same symbolic extras (the layering is duration-driven, identical
        // for both methods).
        assert_eq!(
            ours_t.indeterminate_layers, conv_t.indeterminate_layers,
            "case {case}"
        );
        // Our method is at least as fast...
        assert!(
            ours_t.fixed <= conv_t.fixed,
            "case {case}: ours {} vs conv {}",
            ours_t,
            conv_t
        );
        // ...with no more devices than the budget and no more paths than
        // the baseline (component-oriented consolidation).
        assert!(ours.schedule.used_device_count() <= 25, "case {case}");
        assert!(conv.schedule.used_device_count() <= 25, "case {case}");
        assert!(
            ours.schedule.path_count() <= conv.schedule.path_count(),
            "case {case}: ours {} paths vs conv {}",
            ours.schedule.path_count(),
            conv.schedule.path_count()
        );
    }
}

#[test]
fn layering_matches_paper_structure() {
    // Case 1: no indeterminate ops -> single layer, no I extras.
    let a1 = mfhls::assays::kinase_activity(2);
    let r1 = Synthesizer::new(SynthConfig::default()).run(&a1).unwrap();
    assert_eq!(r1.layering.num_layers(), 1);
    assert!(r1.schedule.exec_time(&a1).indeterminate_layers.is_empty());

    // Case 2: 10 indeterminate (= threshold) -> 2 layers, I1.
    let a2 = mfhls::assays::gene_expression(10);
    let r2 = Synthesizer::new(SynthConfig::default()).run(&a2).unwrap();
    assert_eq!(r2.layering.num_layers(), 2);
    assert_eq!(r2.schedule.exec_time(&a2).indeterminate_layers, vec![1]);

    // Case 3: 20 indeterminate -> 3 layers, I1 + I2.
    let a3 = mfhls::assays::rtqpcr(20);
    let r3 = Synthesizer::new(SynthConfig::default()).run(&a3).unwrap();
    assert_eq!(r3.layering.num_layers(), 3);
    assert_eq!(r3.schedule.exec_time(&a3).indeterminate_layers, vec![1, 2]);
}

#[test]
fn progressive_resynthesis_reports_improvements() {
    let assay = mfhls::assays::rtqpcr(20);
    let r = Synthesizer::new(SynthConfig::default())
        .run(&assay)
        .unwrap();
    assert!(r.iterations.len() >= 2, "re-synthesis should iterate");
    let first = r.iterations[0].exec_time.fixed;
    let best = r.schedule.exec_time(&assay).fixed;
    assert!(best < first, "re-synthesis should improve case 3");
    // The kept schedule is the best of all iterations.
    for it in &r.iterations {
        assert!(best <= it.exec_time.fixed);
    }
}

#[test]
fn dsl_round_trip_synthesises_identically() {
    let assay = mfhls::assays::gene_expression(3);
    let text = mfhls::dsl::to_text(&assay);
    let reparsed = mfhls::dsl::parse(&text).unwrap();
    let a = Synthesizer::new(SynthConfig::default())
        .run(&assay)
        .unwrap();
    let b = Synthesizer::new(SynthConfig::default())
        .run(&reparsed)
        .unwrap();
    assert_eq!(
        a.schedule.exec_time(&assay),
        b.schedule.exec_time(&reparsed)
    );
    assert_eq!(
        a.schedule.used_device_count(),
        b.schedule.used_device_count()
    );
}

#[test]
fn schedules_execute_without_runtime_conflicts() {
    for (case, _, assay) in mfhls::assays::benchmarks() {
        let r = Synthesizer::new(SynthConfig::default())
            .run(&assay)
            .unwrap();
        for seed in 0..5 {
            let sim = simulate_hybrid(
                &assay,
                &r.schedule,
                &SimConfig {
                    seed,
                    ..SimConfig::default()
                },
            )
            .unwrap_or_else(|e| panic!("case {case} seed {seed}: {e}"));
            // Realized makespan is never below the fixed accounting.
            assert!(sim.makespan >= r.schedule.exec_time(&assay).fixed);
        }
    }
}

#[test]
fn hybrid_solver_never_loses_to_heuristic() {
    let mut assay = mfhls::Assay::new("tiny");
    use mfhls::{Duration, Operation};
    let a = assay.add_op(Operation::new("a").with_duration(Duration::fixed(5)));
    let b = assay.add_op(Operation::new("b").with_duration(Duration::fixed(7)));
    let c = assay.add_op(Operation::new("c").with_duration(Duration::fixed(3)));
    assay.add_dependency(a, c).unwrap();
    assay.add_dependency(b, c).unwrap();

    let heur = Synthesizer::new(
        SynthConfig::builder()
            .solver(SolverKind::Heuristic {
                improvement_passes: 2,
            })
            .max_devices(4)
            .build()
            .unwrap(),
    )
    .run(&assay)
    .unwrap();
    let hybrid = Synthesizer::new(
        SynthConfig::builder()
            .solver(SolverKind::Hybrid {
                max_nodes: 100_000,
                ilp_op_limit: 8,
                improvement_passes: 2,
            })
            .max_devices(4)
            .build()
            .unwrap(),
    )
    .run(&assay)
    .unwrap();
    hybrid.schedule.validate(&assay).unwrap();
    assert!(
        hybrid.final_stats().objective <= heur.final_stats().objective,
        "hybrid {} vs heuristic {}",
        hybrid.final_stats().objective,
        heur.final_stats().objective
    );
}

#[test]
fn netlist_and_layout_are_consistent_with_schedule() {
    let assay = mfhls::assays::kinase_activity(2);
    let r = Synthesizer::new(SynthConfig::default())
        .run(&assay)
        .unwrap();
    let netlist = r.schedule.to_netlist(&assay);
    assert_eq!(netlist.devices().len(), r.schedule.devices.len());
    assert_eq!(netlist.path_count(), r.schedule.path_count());
    let layout = mfhls::chip::layout::place(&netlist);
    for (key, _) in netlist.paths() {
        assert!(layout.path_length(key).is_some(), "path {key} unplaced");
    }
}

#[test]
fn benchmark_chips_fit_a_large_die() {
    use mfhls::chip::{control::ControlModel, floorplan, CostModel};
    // |D| = 25 worst case: 25 medium rings with all accessories is the
    // upper envelope; the synthesized chips must stay well under a large
    // die spec.
    let spec = floorplan::ChipSpec {
        max_area: 1500,
        max_ports: 220,
        ..floorplan::ChipSpec::default()
    };
    for (case, _, assay) in mfhls::assays::benchmarks() {
        let r = Synthesizer::new(SynthConfig::default())
            .run(&assay)
            .unwrap();
        let netlist = r.schedule.to_netlist(&assay);
        let report = floorplan::check(
            &netlist,
            &spec,
            &CostModel::default(),
            &ControlModel::default(),
        );
        assert!(report.fits, "case {case}: {report}");
        // Sanity: area accounting matches the device list.
        let sum: u64 = r
            .schedule
            .devices
            .iter()
            .map(|d| CostModel::default().device_area(d))
            .sum();
        assert_eq!(report.device_area, sum, "case {case}");
    }
}

#[test]
fn committed_protocol_files_match_generators() {
    // protocols/benchmarks/*.mfa are generated artifacts
    // (`cargo run -p mfhls-bench --bin gen_protocols`); they must stay in
    // sync with the canonical assay generators.
    for (file, assay) in [
        ("case1_kinase.mfa", mfhls::assays::kinase_activity(2)),
        (
            "case2_gene_expression.mfa",
            mfhls::assays::gene_expression(10),
        ),
        ("case3_rtqpcr.mfa", mfhls::assays::rtqpcr(20)),
        ("bonus_cell_culture.mfa", mfhls::assays::cell_culture(4, 3)),
    ] {
        let path = format!("protocols/benchmarks/{file}");
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{path}: {e} (run gen_protocols)"));
        assert_eq!(
            text,
            mfhls::dsl::to_text(&assay),
            "{path} is stale; regenerate with gen_protocols"
        );
        let parsed = mfhls::dsl::parse(&text).unwrap();
        assert_eq!(parsed.len(), assay.len());
        assert_eq!(
            parsed.dependencies().collect::<Vec<_>>().len(),
            assay.dependencies().collect::<Vec<_>>().len()
        );
    }
}

#[test]
fn conventional_schedules_also_validate_component_rules() {
    // Signature-class binding is strictly more restrictive, so conventional
    // schedules must pass the component-oriented validator too.
    for (_, _, assay) in mfhls::assays::benchmarks() {
        let conv = conventional::run(&assay, SynthConfig::default()).unwrap();
        conv.schedule.validate(&assay).unwrap();
    }
}

#[test]
fn faultsim_recovers_from_seeded_device_failures() {
    use mfhls::core::recovery::{resynthesize_suffix, RetryPolicy};
    use mfhls::sim::{run_with_recovery, DurationModel, FaultModel, ForcedFailure, RunOutcome};
    use std::collections::BTreeSet;

    let text = std::fs::read_to_string("protocols/single_cell_screen.mfa").unwrap();
    let assay = mfhls::dsl::parse(&text).unwrap();
    let config = SynthConfig::default();
    let result = Synthesizer::new(config.clone()).run(&assay).unwrap();
    let schedule = &result.schedule;
    schedule.validate(&assay).unwrap();
    let cfg = SimConfig {
        model: DurationModel::GeometricRetry {
            success_probability: 0.53,
            max_attempts: 20,
        },
        seed: 42,
    };
    let policy = RetryPolicy::default();

    // Faults disabled: the fault-aware engine reproduces the plain hybrid
    // simulation exactly.
    let base = simulate_hybrid(&assay, schedule, &cfg).unwrap();
    let clean = run_with_recovery(
        &assay,
        schedule,
        &cfg,
        &FaultModel::none(),
        &policy,
        &config,
    )
    .unwrap();
    assert_eq!(clean.makespan, base.makespan);
    assert!(matches!(clean.outcome, RunOutcome::Completed));
    assert_eq!(clean.resyntheses, 0);
    assert!(clean.fault_events.is_empty());

    // Force each device to fail at the first boundary in turn: every run
    // either recovers (completing all ops without ever using the dead
    // device) or degrades gracefully because the sole host of a device
    // class was lost. At least one device must be survivable.
    let mut survived = 0usize;
    for dead in 0..schedule.devices.len() {
        let faults = FaultModel {
            forced_failures: vec![ForcedFailure {
                device: dead,
                layer: 0,
            }],
            ..FaultModel::none()
        };
        let run = run_with_recovery(&assay, schedule, &cfg, &faults, &policy, &config).unwrap();
        match run.outcome {
            RunOutcome::Completed => {
                assert!(run.resyntheses >= 1, "d{dead}: recovery must re-synthesize");
                assert!(
                    run.events.iter().all(|e| e.device != dead),
                    "d{dead}: a completed op ran on the quarantined device"
                );
                assert_eq!(run.completed.len(), assay.len());
                survived += 1;
            }
            RunOutcome::Degraded(report) => {
                assert!(!report.reason.is_empty());
            }
        }
    }
    assert!(survived > 0, "no single-device failure is survivable");

    // The recovered schedule itself validates and avoids the quarantine.
    let dead: BTreeSet<usize> = [8].into_iter().collect();
    let plan = resynthesize_suffix(&assay, schedule, &BTreeSet::new(), &dead, &config).unwrap();
    plan.schedule.validate(&plan.assay).unwrap();
    assert!(!plan.uses_quarantined());
    assert_eq!(plan.schedule.devices, schedule.devices, "no renumbering");
}

#[test]
fn faultsim_survivability_ranks_recovery_above_offline() {
    use mfhls::core::recovery::RetryPolicy;
    use mfhls::sim::{trials, DurationModel, FaultModel};

    let text = std::fs::read_to_string("protocols/single_cell_screen.mfa").unwrap();
    let assay = mfhls::dsl::parse(&text).unwrap();
    let config = SynthConfig::default();
    let result = Synthesizer::new(config.clone()).run(&assay).unwrap();
    let stats = trials::survivability_trials(
        &assay,
        &result.schedule,
        DurationModel::Exact,
        &FaultModel::uniform(0.01),
        &RetryPolicy::default(),
        &config,
        100,
        3.0,
        2,
    )
    .unwrap();
    assert_eq!(stats.len(), 3, "three policies reported");
    let hybrid = &stats[0];
    let padded = &stats[1];
    assert_eq!(hybrid.policy, "hybrid+recovery");
    assert!(hybrid.completion_rate >= padded.completion_rate);
    for st in &stats {
        assert_eq!(st.trials, 100);
        assert!(st.mean_completed_fraction >= st.completion_rate);
    }
}
