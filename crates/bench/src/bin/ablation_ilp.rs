//! Ablation C: the exact ILP back-end vs the heuristic layer solver on
//! small random single-layer problems — optimality gap and runtime.
//!
//! ```text
//! cargo run --release -p mfhls-bench --bin ablation_ilp
//! ```
//!
//! Expectation: the heuristic's objective matches or stays within a small
//! factor of the exact back-end's (time-boxed branch-and-bound seeded with
//! the heuristic cutoff), while exact runtimes grow quickly with layer size
//! — which is why large layers run the heuristic; see `SolverKind::Hybrid`.

use mfhls_assays::{random_assay, RandomAssayParams};
use mfhls_bench::print_table;
use mfhls_core::{SolverKind, SynthConfig, Synthesizer};

fn main() {
    println!("Ablation C: exact ILP vs heuristic on small layers\n");
    let mut rows = Vec::new();
    for ops in [3usize, 4, 5, 6, 7] {
        let mut gap_sum = 0.0;
        let mut worst_gap: f64 = 0.0;
        let mut ilp_time = std::time::Duration::ZERO;
        let mut heur_time = std::time::Duration::ZERO;
        let mut samples = 0u32;
        for seed in 0..6u64 {
            let assay = random_assay(
                seed,
                RandomAssayParams {
                    ops,
                    edge_probability: 0.2,
                    indeterminate_fraction: 0.0, // single-layer problems
                    max_duration: 20,
                },
            );
            let ilp = Synthesizer::new(
                SynthConfig::builder()
                    .solver(SolverKind::Hybrid {
                        max_nodes: 400_000,
                        ilp_op_limit: 10,
                        improvement_passes: 2,
                    })
                    .max_devices(6)
                    .max_iterations(1)
                    .build()
                    .expect("valid config"),
            )
            .run(&assay);
            let heur = Synthesizer::new(
                SynthConfig::builder()
                    .solver(SolverKind::Heuristic {
                        improvement_passes: 2,
                    })
                    .max_devices(6)
                    .max_iterations(1)
                    .build()
                    .expect("valid config"),
            )
            .run(&assay)
            .expect("heuristic always succeeds");
            let Ok(ilp) = ilp else {
                continue; // solver budget exceeded; skip the sample
            };
            let exact = ilp.iterations[0].objective as f64;
            let approx = heur.iterations[0].objective as f64;
            let gap = if exact > 0.0 {
                (approx - exact) / exact * 100.0
            } else {
                0.0
            };
            gap_sum += gap.max(0.0);
            worst_gap = worst_gap.max(gap);
            ilp_time += ilp.runtime;
            heur_time += heur.runtime;
            samples += 1;
        }
        if samples == 0 {
            continue;
        }
        rows.push(vec![
            ops.to_string(),
            samples.to_string(),
            format!("{:.1}%", gap_sum / samples as f64),
            format!("{:.1}%", worst_gap),
            format!("{:.1?}", ilp_time / samples),
            format!("{:.1?}", heur_time / samples),
        ]);
    }
    print_table(
        &[
            "layer ops",
            "samples",
            "avg gap",
            "worst gap",
            "ILP time",
            "heuristic time",
        ],
        &rows,
    );
    println!(
        "\n(gap = heuristic objective vs the exact-bounded hybrid solver; same weights, |D| = 6)"
    );
}
