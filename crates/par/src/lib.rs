//! A zero-dependency parallel execution substrate with a **deterministic
//! ordered reduction** guarantee.
//!
//! The workspace builds fully offline, so instead of `rayon` this crate
//! carries a small scoped pool on [`std::thread::scope`]. Work items are
//! claimed from a shared atomic cursor in fixed-size chunks (idle workers
//! steal the next chunk the moment they finish one), each result is tagged
//! with its input index, and the reduction reassembles results **in input
//! order**. Consequently, for any pure `f`:
//!
//! > `par_map(items, f)` is **bitwise identical** to
//! > `items.iter().map(f).collect()` at *every* thread count,
//!
//! which is what lets `mfhls-sim`'s seeded Monte-Carlo trials and
//! `mfhls-core`'s synthesis keep their byte-for-byte reproducibility
//! guarantees while saturating the machine.
//!
//! # Sizing
//!
//! The pool size is resolved per call, first match wins:
//!
//! 1. a [`with_threads`] override on the calling thread,
//! 2. the process-wide [`set_default_threads`] override (CLI `--threads`),
//! 3. the `MFHLS_THREADS` environment variable (read once per process),
//! 4. [`std::thread::available_parallelism`].
//!
//! # Nesting
//!
//! Calls made *from inside* a pool worker run sequentially on that worker
//! (no thread explosion, no deadlock); the determinism guarantee is
//! unaffected because sequential execution is the reference semantics.
//!
//! # Panics
//!
//! A panic in `f` is propagated to the caller with its original payload
//! after all workers have drained, exactly like the sequential loop would
//! (modulo items after the panicking one possibly having run).
//!
//! # Example
//!
//! ```
//! let squares = mfhls_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // Identical output at any thread count:
//! let one = mfhls_par::with_threads(1, || mfhls_par::par_map(&[1, 2, 3], |&x| x + 1));
//! let four = mfhls_par::with_threads(4, || mfhls_par::par_map(&[1, 2, 3], |&x| x + 1));
//! assert_eq!(one, four);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

thread_local! {
    /// Set while the current thread is a pool worker: nested calls run
    /// sequentially instead of spawning a second scope.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
    /// Per-thread override installed by [`with_threads`] (0 = unset).
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Process-wide default installed by [`set_default_threads`] (0 = unset).
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// `MFHLS_THREADS`, parsed once per process (`None` when absent/invalid).
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("MFHLS_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// The number of worker threads a parallel call made *right now* would use.
///
/// Resolution order: [`with_threads`] override, [`set_default_threads`],
/// `MFHLS_THREADS`, [`std::thread::available_parallelism`] (falling back to
/// 1). Inside a pool worker this returns 1 (nested calls are sequential).
pub fn max_threads() -> usize {
    if IN_POOL.with(Cell::get) {
        return 1;
    }
    let tl = THREAD_OVERRIDE.with(Cell::get);
    if tl > 0 {
        return tl;
    }
    let global = DEFAULT_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Whether the calling thread is a pool worker executing a parallel item.
///
/// Observability code uses this to distinguish the sequential driver
/// thread (whose records are thread-count-invariant) from speculative
/// worker execution. Note the converse does not hold on the *caller*
/// thread: with one thread, parallel items run inline there — callers
/// whose per-item records must stay deterministic mute recording
/// explicitly instead of relying on this check.
pub fn in_worker() -> bool {
    IN_POOL.with(Cell::get)
}

/// Installs a process-wide default thread count (`None` clears it). The
/// CLI's `--threads N` flag funnels here; [`with_threads`] still wins for
/// the calling thread.
pub fn set_default_threads(n: Option<usize>) {
    DEFAULT_THREADS.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// Runs `f` with the calling thread's pool size pinned to `n` (clamped to
/// at least 1). Restores the previous override on exit, including on
/// unwind. This is the race-free way for tests to compare thread counts.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(Cell::get);
    let _restore = Restore(prev);
    THREAD_OVERRIDE.with(|c| c.set(n.max(1)));
    f()
}

/// Maps `f` over `items` in parallel; the output vector is in input order
/// and bitwise identical to the sequential map at any thread count.
///
/// # Panics
///
/// Propagates the first observed panic from `f` (original payload).
pub fn par_map<T: Sync, R: Send, F>(items: &[T], f: F) -> Vec<R>
where
    F: Fn(&T) -> R + Sync,
{
    run_indexed(items.len(), |i| f(&items[i]))
}

/// Like [`par_map`] but hands `f` the item's index as well — the natural
/// shape for seeded trials (`f(seed_index, _)`).
///
/// # Panics
///
/// Propagates the first observed panic from `f` (original payload).
pub fn par_map_indexed<T: Sync, R: Send, F>(items: &[T], f: F) -> Vec<R>
where
    F: Fn(usize, &T) -> R + Sync,
{
    run_indexed(items.len(), |i| f(i, &items[i]))
}

/// Splits `items` into contiguous chunks of at most `chunk_size` and maps
/// `f(chunk_start_index, chunk)` over them in parallel. Results come back
/// in chunk order. Useful when per-item work is too small to amortise the
/// claim overhead.
///
/// # Panics
///
/// Panics if `chunk_size == 0`; propagates panics from `f`.
pub fn par_chunks<T: Sync, R: Send, F>(items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    F: Fn(usize, &[T]) -> R + Sync,
{
    assert!(chunk_size > 0, "par_chunks requires a non-zero chunk size");
    let n_chunks = items.len().div_ceil(chunk_size);
    run_indexed(n_chunks, |c| {
        let start = c * chunk_size;
        let end = (start + chunk_size).min(items.len());
        f(start, &items[start..end])
    })
}

/// The shared engine: evaluates `work(0..n)` on the resolved pool and
/// returns the results in index order.
fn run_indexed<R: Send>(n: usize, work: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let threads = max_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(work).collect();
    }
    // Chunked self-scheduling: small enough chunks that a slow item cannot
    // strand the tail on one worker, large enough to keep the atomic cold.
    let chunk = (n / (threads * 4)).max(1);
    let cursor = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);
    let mut panic_payload = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    IN_POOL.with(|c| c.set(true));
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if lo >= n {
                            break;
                        }
                        for i in lo..(lo + chunk).min(n) {
                            out.push((i, work(i)));
                        }
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => parts.push(part),
                Err(payload) => panic_payload = Some(payload),
            }
        }
    });
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }
    // Ordered reduction: place every tagged result back at its index.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in parts.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("pool produced every index exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 0xabc).collect();
        for threads in [1, 2, 3, 4, 8, 33] {
            let par = with_threads(threads, || par_map(&items, |&x| x.wrapping_mul(x) ^ 0xabc));
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn ordered_reduction_under_skewed_workloads() {
        // Early items take much longer than late ones; order must hold.
        let items: Vec<usize> = (0..64).collect();
        let out = with_threads(8, || {
            par_map(&items, |&i| {
                if i < 4 {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                i * 10
            })
        });
        assert_eq!(out, (0..64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn indexed_variant_sees_correct_indices() {
        let items = vec!["a", "b", "c", "d"];
        let out = with_threads(4, || par_map_indexed(&items, |i, s| format!("{i}{s}")));
        assert_eq!(out, vec!["0a", "1b", "2c", "3d"]);
    }

    #[test]
    fn chunks_cover_everything_in_order() {
        let items: Vec<u32> = (0..103).collect();
        let sums = with_threads(4, || {
            par_chunks(&items, 10, |start, chunk| {
                (start, chunk.iter().sum::<u32>())
            })
        });
        assert_eq!(sums.len(), 11);
        assert_eq!(sums[0].0, 0);
        assert_eq!(sums[10].0, 100);
        let total: u32 = sums.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, (0..103).sum::<u32>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u8], |&x| x + 1), vec![8]);
    }

    #[test]
    fn panic_propagates_with_payload() {
        let items: Vec<usize> = (0..32).collect();
        let err = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map(&items, |&i| {
                    if i == 13 {
                        panic!("boom at {i}");
                    }
                    i
                })
            })
        })
        .expect_err("must propagate");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("boom at 13"), "payload lost: {msg}");
    }

    #[test]
    fn nested_calls_run_sequentially_and_correctly() {
        let outer: Vec<usize> = (0..8).collect();
        let out = with_threads(4, || {
            par_map(&outer, |&i| {
                // Inside a worker: must not deadlock or explode, and must
                // still produce ordered results.
                let inner: Vec<usize> = (0..5).collect();
                let inner_out = par_map(&inner, |&j| i * 100 + j);
                assert_eq!(max_threads(), 1, "nested calls are sequential");
                inner_out.iter().sum::<usize>()
            })
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..5).map(|j| i * 100 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn with_threads_restores_on_unwind() {
        let before = THREAD_OVERRIDE.with(Cell::get);
        let _ = std::panic::catch_unwind(|| {
            with_threads(3, || panic!("unwind"));
        });
        assert_eq!(THREAD_OVERRIDE.with(Cell::get), before);
    }

    #[test]
    fn default_threads_override_applies_and_clears() {
        // The thread-local override must win over the global one.
        set_default_threads(Some(2));
        assert_eq!(with_threads(5, max_threads), 5);
        set_default_threads(None);
        assert!(max_threads() >= 1);
    }

    #[test]
    fn every_worker_contributes_under_load() {
        // Smoke test that work really fans out: with 4 threads and slow
        // items, at least 2 distinct threads must participate.
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..16).collect();
        with_threads(4, || {
            par_map(&items, |_| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                seen.lock()
                    .expect("poisoned")
                    .insert(std::thread::current().id());
            })
        });
        assert!(seen.lock().expect("poisoned").len() >= 2);
    }

    #[test]
    fn side_effect_count_is_exact() {
        let calls = AtomicU64::new(0);
        let items: Vec<usize> = (0..257).collect();
        let out = with_threads(4, || {
            par_map(&items, |&i| {
                calls.fetch_add(1, Ordering::Relaxed);
                i
            })
        });
        assert_eq!(out.len(), 257);
        assert_eq!(calls.load(Ordering::Relaxed), 257);
    }
}
