//! Layer-solution memoization for progressive re-synthesis.
//!
//! Re-synthesis (§3.2) repeatedly re-solves per-layer scheduling problems;
//! across iterations many of those sub-problems are *structurally
//! identical* — same device pool, same inherited paths, same transport
//! estimates. A [`LayerCache`] lives for the duration of one
//! [`Synthesizer::run_seeded`](crate::Synthesizer::run_seeded) call and maps
//! the structural identity of a sub-problem to its solved
//! [`LayerSolution`], so a revisit skips the solver entirely.
//!
//! Because the cache never outlives a run, everything constant within a run
//! (the assay, the layering, weights, costs, the solver configuration, the
//! device budget, the binding mode) is deliberately *not* part of the key.
//! The key captures exactly the inputs that vary between passes:
//!
//! * the layer index (which fixes the op set under a fixed layering — the
//!   ops are still stored verbatim as a guard),
//! * the inherited device pool and its bindability mask,
//! * the transport paths accumulated by earlier layers,
//! * cross-layer parent placements, and
//! * the per-op transport-time estimates (these change whenever transport
//!   refinement changes an op's estimate).
//!
//! All built-in solvers are deterministic functions of the
//! [`LayerProblem`](crate::LayerProblem), so replaying a cached solution is
//! observationally identical to re-solving — schedules are bitwise equal
//! with the cache on or off.

use crate::{LayerProblem, LayerSolution, OpId};
use mfhls_chip::DeviceConfig;
use std::collections::HashMap;

/// The structural identity of one per-layer sub-problem; see the module
/// docs for what is (and is not) part of the key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LayerKey {
    layer: usize,
    ops: Vec<OpId>,
    devices: Vec<DeviceConfig>,
    bindable: Vec<bool>,
    existing_paths: Vec<(usize, usize)>,
    cross_inputs: Vec<(OpId, usize)>,
    transport: Vec<u64>,
}

impl LayerKey {
    /// Extracts the structural key of `problem` as posed for `layer`.
    pub fn of(problem: &LayerProblem<'_>, layer: usize) -> LayerKey {
        LayerKey {
            layer,
            ops: problem.ops.clone(),
            devices: problem.devices.clone(),
            bindable: problem.bindable.clone(),
            existing_paths: problem.existing_paths.iter().copied().collect(),
            cross_inputs: problem.cross_inputs.clone(),
            transport: problem
                .ops
                .iter()
                .map(|&o| problem.transport.of(o))
                .collect(),
        }
    }
}

/// A per-run memo table of solved layer sub-problems with hit/miss
/// accounting. See the module docs for the key contract.
#[derive(Debug, Default)]
pub struct LayerCache {
    map: HashMap<LayerKey, LayerSolution>,
    hits: u64,
    misses: u64,
}

impl LayerCache {
    /// Creates an empty cache.
    pub fn new() -> LayerCache {
        LayerCache::default()
    }

    /// Looks up a solution, counting a hit or a miss.
    pub fn lookup(&mut self, key: &LayerKey) -> Option<LayerSolution> {
        match self.map.get(key) {
            Some(sol) => {
                self.hits += 1;
                Some(sol.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Whether `key` is present, without touching the counters.
    pub fn contains(&self, key: &LayerKey) -> bool {
        self.map.contains_key(key)
    }

    /// Stores a solution (counted as part of the preceding
    /// [`LayerCache::lookup`] miss).
    pub fn insert(&mut self, key: LayerKey, solution: LayerSolution) {
        self.map.insert(key, solution);
    }

    /// Stores a speculatively pre-solved solution without touching the
    /// counters — used by the parallel pre-solve phase, whose predictions
    /// are not demand lookups.
    pub fn warm(&mut self, key: LayerKey, solution: LayerSolution) {
        self.map.entry(key).or_insert(solution);
    }

    /// Demand lookups that found a solution since the last
    /// [`LayerCache::take_counters`] call.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand lookups that missed since the last
    /// [`LayerCache::take_counters`] call.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached layer solutions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no solutions.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Returns `(hits, misses)` accumulated since the previous call and
    /// resets both counters — one call per re-synthesis iteration gives
    /// per-iteration figures.
    pub fn take_counters(&mut self) -> (u64, u64) {
        let out = (self.hits, self.misses);
        self.hits = 0;
        self.misses = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        Assay, Duration, LayerSolver, Operation, TransportConfig, TransportTimes, Weights,
    };
    use mfhls_chip::CostModel;
    use std::collections::BTreeSet;

    fn assay() -> Assay {
        let mut a = Assay::new("t");
        a.add_op(Operation::new("x").with_duration(Duration::fixed(5)));
        a.add_op(Operation::new("y").with_duration(Duration::fixed(3)));
        a
    }

    fn problem<'a>(
        assay: &'a Assay,
        transport: &'a TransportTimes,
        costs: &'a CostModel,
    ) -> LayerProblem<'a> {
        LayerProblem {
            assay,
            ops: assay.op_ids().collect(),
            devices: vec![],
            bindable: vec![],
            max_devices: 4,
            transport,
            weights: Weights::default(),
            costs,
            existing_paths: BTreeSet::new(),
            cross_inputs: vec![],
            component_oriented: true,
        }
    }

    #[test]
    fn identical_problems_share_a_key() {
        let a = assay();
        let t = TransportTimes::initial(&a, &TransportConfig::default());
        let costs = CostModel::default();
        let k1 = LayerKey::of(&problem(&a, &t, &costs), 0);
        let k2 = LayerKey::of(&problem(&a, &t, &costs), 0);
        assert_eq!(k1, k2);
    }

    #[test]
    fn key_distinguishes_layer_paths_and_transport() {
        let a = assay();
        let t = TransportTimes::initial(&a, &TransportConfig::default());
        let costs = CostModel::default();
        let base = LayerKey::of(&problem(&a, &t, &costs), 0);
        assert_ne!(base, LayerKey::of(&problem(&a, &t, &costs), 1));
        let mut with_path = problem(&a, &t, &costs);
        with_path.existing_paths.insert((0, 1));
        assert_ne!(base, LayerKey::of(&with_path, 0));
        let device_of = vec![0usize, 0];
        let refined = TransportTimes::refined(&a, &TransportConfig::default(), &device_of);
        let refined_problem = problem(&a, &refined, &costs);
        let refined_key = LayerKey::of(&refined_problem, 0);
        // Refinement with everything co-located drops transport estimates.
        assert_ne!(base, refined_key);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let a = assay();
        let t = TransportTimes::initial(&a, &TransportConfig::default());
        let costs = CostModel::default();
        let p = problem(&a, &t, &costs);
        let key = LayerKey::of(&p, 0);
        let mut cache = LayerCache::new();
        assert!(cache.lookup(&key).is_none());
        let sol = crate::solver::SolverKind::default().solve(&p).unwrap();
        cache.insert(key.clone(), sol.clone());
        assert!(cache.contains(&key));
        assert_eq!(cache.lookup(&key), Some(sol.clone()));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.take_counters(), (1, 1));
        assert_eq!(cache.take_counters(), (0, 0));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
        // warm never overwrites and never counts.
        cache.warm(key.clone(), sol);
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }
}
