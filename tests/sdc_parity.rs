//! SDC-vs-ILP parity over the graded generated-corpus profiles.
//!
//! The SDC backend's constraint skeleton (dependency min-gaps only, no
//! resource contention) is a certified lower bound on any feasible layer
//! schedule: these tests walk the layering of every `bench/corpus/`
//! profile, lift each layer into a standalone sub-problem, and pin
//!
//! 1. `skeleton_makespan` ≤ the makespan of every backend's solution —
//!    including the proven-optimal ILP on layers small enough to solve
//!    exactly in a debug build, so the bound is checked against the true
//!    optimum, not just other heuristics;
//! 2. the portfolio racer returns exactly the best individual backend's
//!    solution (first-improving in listed order), with balanced race
//!    accounting;
//! 3. whole-assay portfolio synthesis is byte-identical at 1 vs 4
//!    threads and with the layer cache on or off.
//!
//! Corpus seeds follow the committed `bench/corpus/` files (1 and 2 per
//! profile).

use mfhls::bench::gen::{self, Profile};
use mfhls::core::heuristic::HeuristicLayerSolver;
use mfhls::core::ilp_model::IlpLayerSolver;
use mfhls::core::{
    layer_assay, skeleton_makespan, Assay, HybridSchedule, LayerProblem, LayerSchedule,
    LayerSolver as _, SdcLayerSolver, SolverKind, SynthConfig, Synthesizer, TransportTimes,
    Weights, PORTFOLIO_ILP_PIVOT_WORK,
};
use mfhls::par::with_threads;
use std::collections::BTreeSet;

/// Layers with at most this many ops qualify for a proven-optimal ILP
/// solve (branch-and-bound in a debug build is the runtime bottleneck);
/// at most one qualifying layer per corpus assay actually gets one.
const ILP_OP_LIMIT: usize = 10;

/// Rebuilds one layer of `assay` as a standalone assay: the layer's ops
/// (fresh dense ids, insertion order = ascending original id) plus the
/// dependencies internal to the layer.
fn lift_layer(assay: &Assay, ops: &[mfhls::core::OpId]) -> Assay {
    let mut sub = Assay::new(&format!("{}-layer", assay.name()));
    let ids: Vec<_> = ops
        .iter()
        .map(|&o| sub.add_op(assay.op(o).clone()))
        .collect();
    for (parent, child) in assay.dependencies() {
        if let (Some(p), Some(c)) = (
            ops.iter().position(|&o| o == parent),
            ops.iter().position(|&o| o == child),
        ) {
            sub.add_dependency(ids[p], ids[c])
                .expect("layer deps stay acyclic");
        }
    }
    sub
}

/// Wraps a single-layer solution as a complete schedule for the validator.
fn as_schedule(sol: &mfhls::core::LayerSolution) -> HybridSchedule {
    HybridSchedule {
        layers: vec![LayerSchedule::new(sol.slots.clone())],
        devices: sol.devices.clone(),
        paths: sol.new_paths.clone(),
    }
}

/// Every (profile, seed, lifted layer) sub-problem of the corpus,
/// visited with a fresh `LayerProblem` per layer. `exact` flags the (at
/// most one per assay) small layer the visitor may afford an exact solve
/// on — debug-mode branch-and-bound costs seconds per layer, so the
/// corpus-wide walk rations it.
fn for_each_layer(mut visit: impl FnMut(&str, usize, &LayerProblem<'_>, bool)) {
    for profile in Profile::ALL {
        for seed in 1..=2u64 {
            let assay = gen::generate(profile, seed);
            let config = gen::check_config(profile);
            let layering =
                layer_assay(&assay, config.indeterminate_threshold).expect("corpus assay layers");
            let mut exact_budget = 1usize;
            for (layer, ops) in layering.layers().iter().enumerate() {
                let exact = ops.len() <= ILP_OP_LIMIT && exact_budget > 0;
                if exact {
                    exact_budget -= 1;
                }
                let sub = lift_layer(&assay, ops);
                let transport = TransportTimes::initial(&sub, &config.transport);
                let problem = LayerProblem {
                    assay: &sub,
                    ops: sub.op_ids().collect(),
                    devices: vec![],
                    bindable: vec![],
                    // The real pipeline would inherit earlier layers'
                    // devices; a lifted layer starts from zero, so give
                    // it room to place every op rather than inflicting
                    // `DeviceBudgetExhausted` on wide layers.
                    max_devices: config.max_devices.max(ops.len()),
                    transport: &transport,
                    weights: Weights::default(),
                    costs: &config.costs,
                    existing_paths: BTreeSet::new(),
                    cross_inputs: vec![],
                    component_oriented: config.component_oriented,
                };
                visit(&format!("{profile}/{seed}"), layer, &problem, exact);
            }
        }
    }
}

#[test]
fn sdc_skeleton_is_a_lower_bound_on_every_backend() {
    let mut layers = 0usize;
    let mut exact_layers = 0usize;
    for_each_layer(|tag, layer, problem, exact| {
        layers += 1;
        let bound = skeleton_makespan(problem).expect("skeleton must solve");
        let heur = HeuristicLayerSolver::default()
            .solve(problem)
            .expect("heuristic must solve every layer");
        let sdc = SdcLayerSolver::default()
            .solve(problem)
            .expect("sdc must solve every layer");
        for (label, sol) in [("heuristic", &heur), ("sdc", &sdc)] {
            assert!(
                bound <= sol.makespan(),
                "{tag} layer {layer}: skeleton {bound} exceeds {label} makespan {}",
                sol.makespan()
            );
            as_schedule(sol)
                .validate(problem.assay)
                .unwrap_or_else(|e| panic!("{tag} layer {layer}: {label} schedule invalid: {e}"));
        }
        // The SDC solve reports its incremental-solver work, and no ILP
        // work — the legalization reuses the heuristic binder only.
        assert_eq!(sdc.stats.sdc_solves, 1, "{tag} layer {layer}");
        assert!(
            sdc.stats.sdc_constraints as usize >= problem.assay.dependencies().count(),
            "{tag} layer {layer}: skeleton dropped dependency constraints"
        );
        assert_eq!(sdc.stats.ilp_solves, 0, "{tag} layer {layer}");
        // Against the true optimum on exactly-solvable layers: the bound
        // ignores resource contention, so ILP can only sit at or above it.
        // The solve runs under the racer's deterministic pivot-work
        // budget — an unbounded debug-build branch-and-bound can churn
        // for tens of minutes on one adversarial 10-op corpus layer —
        // so a layer that exhausts the budget yields a feasible
        // incumbent (still a valid upper bound to check against) rather
        // than a certificate, and only certified optima count toward
        // the exact quota.
        if exact {
            let (sol, stats) = IlpLayerSolver {
                max_nodes: 20_000,
                pivot_work: Some(PORTFOLIO_ILP_PIVOT_WORK),
                ..IlpLayerSolver::default()
            }
            .solve_with_stats(problem);
            if let Ok(sol) = sol {
                assert!(
                    bound <= sol.makespan(),
                    "{tag} layer {layer}: skeleton {bound} exceeds ILP makespan {}",
                    sol.makespan()
                );
                if stats.proven_optimal == 1 {
                    exact_layers += 1;
                }
            }
        }
    });
    assert!(layers >= 20, "corpus walk degenerated: {layers} layers");
    assert!(
        exact_layers >= 5,
        "too few certified-optimal checks: {exact_layers} — the corpus lost its small layers"
    );
}

#[test]
fn portfolio_layer_solution_equals_best_individual_backend() {
    for_each_layer(|tag, layer, problem, exact| {
        let mut backends = vec![
            SolverKind::Heuristic {
                improvement_passes: 2,
            },
            SolverKind::Sdc {
                improvement_passes: 2,
            },
        ];
        let cheap: Vec<_> = backends
            .iter()
            .map(|b| b.solve(problem).expect("backend must solve the layer"))
            .collect();
        // First-improving in listed order: without an exact leg, the
        // adopted solution is the first cheap backend attaining the
        // minimum objective.
        let winner = cheap
            .iter()
            .min_by_key(|s| s.objective)
            .expect("non-empty race");
        // The exact leg is raced exactly as `solve_portfolio` runs it —
        // cutoff-bounded by the best cheap objective, under the
        // deterministic pivot-work budget — so its oracle must mirror
        // that construction; an unbounded standalone `SolverKind::Ilp`
        // solve may legitimately differ.
        let exact_win = exact.then(|| {
            backends.push(SolverKind::Ilp { max_nodes: 20_000 });
            let (sol, _) = IlpLayerSolver {
                max_nodes: 20_000,
                cutoff: Some(winner.objective),
                pivot_work: Some(PORTFOLIO_ILP_PIVOT_WORK),
                ..IlpLayerSolver::default()
            }
            .solve_with_stats(problem);
            sol.ok().filter(|s| s.objective < winner.objective)
        });
        let expected = exact_win.flatten().unwrap_or_else(|| winner.clone());
        let race = SolverKind::Portfolio {
            backends: backends.clone(),
        }
        .solve(problem)
        .expect("portfolio must solve the layer");
        assert_eq!(
            race.objective, expected.objective,
            "{tag} layer {layer}: race objective differs from best backend"
        );
        assert_eq!(race.slots, expected.slots, "{tag} layer {layer}");
        assert_eq!(race.devices, expected.devices, "{tag} layer {layer}");
        assert_eq!(race.new_paths, expected.new_paths, "{tag} layer {layer}");
        // Race accounting balances, and the losers' work is absorbed.
        assert_eq!(race.stats.portfolio_races, 1, "{tag} layer {layer}");
        assert_eq!(
            race.stats.wins_heuristic + race.stats.wins_sdc + race.stats.wins_ilp,
            1,
            "{tag} layer {layer}"
        );
        assert!(
            race.stats.sdc_solves >= 1,
            "{tag} layer {layer}: sdc leg work missing from merged stats"
        );
    });
}

#[test]
fn portfolio_synthesis_is_thread_count_and_cache_invariant() {
    // Whole-assay determinism pins for the racer, mirroring
    // tests/determinism.rs: byte-identical schedules and solver counters
    // at 1 vs 4 threads, and with the layer cache off. One profile per
    // structural family keeps the debug runtime bounded.
    for profile in [Profile::Small, Profile::WideFanout, Profile::Mixed] {
        let assay = gen::generate(profile, 1);
        let solver = SolverKind::Portfolio {
            backends: vec![
                SolverKind::Heuristic {
                    improvement_passes: 2,
                },
                SolverKind::Sdc {
                    improvement_passes: 2,
                },
            ],
        };
        let run = |cache: bool| {
            let solver = solver.clone();
            let assay = &assay;
            move || {
                Synthesizer::new(
                    SynthConfig::builder()
                        .solver(solver.clone())
                        .layer_cache(cache)
                        .build()
                        .expect("valid config"),
                )
                .run(assay)
                .expect("corpus assay must synthesize")
            }
        };
        let seq = with_threads(1, run(true));
        let par = with_threads(4, run(true));
        let cold = with_threads(1, run(false));
        assert_eq!(
            seq.schedule, par.schedule,
            "{profile}: portfolio schedule differs between 1 and 4 threads"
        );
        assert_eq!(
            seq.schedule, cold.schedule,
            "{profile}: layer cache changed the portfolio schedule"
        );
        assert_eq!(seq.iterations.len(), par.iterations.len());
        for (s, p) in seq.iterations.iter().zip(&par.iterations) {
            assert_eq!(s.objective, p.objective);
            assert_eq!(
                s.solver, p.solver,
                "{profile}: portfolio solver stats differ between 1 and 4 threads"
            );
        }
        let total = &seq.final_stats().solver;
        assert!(
            total.portfolio_races > 0,
            "{profile}: no races recorded over a full synthesis"
        );
        assert_eq!(
            total.wins_heuristic + total.wins_sdc + total.wins_ilp,
            total.portfolio_races,
            "{profile}: race accounting out of balance"
        );
    }
}
