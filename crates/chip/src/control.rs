//! Control-layer estimation: valves, pressure ports, and service ports.
//!
//! §2.1.2 of the paper prices accessories by "the implementation of extra
//! chip ports and control channels" (besides masks, yield and test cost).
//! This module turns a device netlist into those physical quantities, so a
//! designer can sanity-check a synthesis result against packaging limits:
//!
//! * every container is delimited by isolation valves (rings additionally
//!   carry a separation valve, Fig. 1);
//! * a pump is a group of peristaltic valves — driven individually, or
//!   sequentially connected to a shared three-phase pressure source (the
//!   option the paper mentions explicitly);
//! * sieve valves are control valves of their own;
//! * heating pads and optical systems need service ports, not valves;
//! * every flow path between two devices is gated by a routing valve at
//!   each end.

use crate::{Accessory, ContainerKind, Netlist};

/// Tunable per-component valve/port counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlModel {
    /// Isolation valves delimiting a chamber.
    pub chamber_valves: u64,
    /// Valves on a ring (isolation + separation, Fig. 1(a)).
    pub ring_valves: u64,
    /// Peristaltic valves forming one pump.
    pub pump_valves: u64,
    /// Control valves per sieve-valve accessory (one per flow direction).
    pub sieve_valves: u64,
    /// Routing valves gating each end of a device-to-device flow path.
    pub path_valves: u64,
    /// Service ports per heating pad (power/sense).
    pub heater_ports: u64,
    /// Service ports per optical system (fibre/LED window).
    pub optical_ports: u64,
}

impl Default for ControlModel {
    fn default() -> Self {
        ControlModel {
            chamber_valves: 2,
            ring_valves: 3,
            pump_valves: 3,
            sieve_valves: 2,
            path_valves: 2,
            heater_ports: 1,
            optical_ports: 1,
        }
    }
}

/// Estimated control-layer resources for a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlEstimate {
    /// Total control valves on the chip.
    pub valves: u64,
    /// Pressure-source ports needed to actuate them. With a shared pump
    /// drive, all pumps' peristaltic phases collapse onto
    /// `pump_valves` ports chip-wide.
    pub control_ports: u64,
    /// Heater service ports.
    pub heater_ports: u64,
    /// Optical service ports.
    pub optical_ports: u64,
}

impl ControlEstimate {
    /// Total of all port kinds — a quick packaging-feasibility number.
    pub fn total_ports(&self) -> u64 {
        self.control_ports + self.heater_ports + self.optical_ports
    }
}

/// Estimates the control layer of `netlist`.
///
/// `shared_pump_drive` applies the paper's shared-pressure-source option:
/// every pump's k-th peristaltic valve is sequentially connected to one of
/// `pump_valves` chip-level phase lines instead of its own port.
///
/// # Example
///
/// ```
/// use mfhls_chip::control::{estimate, ControlModel};
/// use mfhls_chip::{Accessory, AccessorySet, Capacity, ContainerKind, DeviceConfig, Netlist};
///
/// let mut net = Netlist::new();
/// let mixer = DeviceConfig::new(
///     ContainerKind::Ring,
///     Capacity::Medium,
///     AccessorySet::from_iter([Accessory::Pump]),
/// )?;
/// net.add_device(mixer);
/// let individual = estimate(&net, &ControlModel::default(), false);
/// let shared = estimate(&net, &ControlModel::default(), true);
/// assert_eq!(individual.valves, shared.valves);       // same hardware
/// assert!(shared.control_ports <= individual.control_ports);
/// # Ok::<(), mfhls_chip::ChipError>(())
/// ```
pub fn estimate(
    netlist: &Netlist,
    model: &ControlModel,
    shared_pump_drive: bool,
) -> ControlEstimate {
    let mut valves = 0u64;
    let mut pump_count = 0u64;
    let mut heater_ports = 0u64;
    let mut optical_ports = 0u64;

    for device in netlist.devices() {
        let cfg = device.config;
        valves += match cfg.container() {
            ContainerKind::Ring => model.ring_valves,
            ContainerKind::Chamber => model.chamber_valves,
        };
        for acc in cfg.accessories().iter() {
            match acc {
                Accessory::Pump => {
                    valves += model.pump_valves;
                    pump_count += 1;
                }
                Accessory::SieveValve => valves += model.sieve_valves,
                Accessory::HeatingPad => heater_ports += model.heater_ports,
                Accessory::OpticalSystem => optical_ports += model.optical_ports,
                Accessory::CellTrap => {} // passive PDMS structure
            }
        }
    }
    valves += netlist.path_count() as u64 * model.path_valves;

    // Ports: each valve needs a pressure line, except shared pump phases.
    let pump_valves_total = pump_count * model.pump_valves;
    let control_ports = if shared_pump_drive && pump_count > 0 {
        valves - pump_valves_total + model.pump_valves
    } else {
        valves
    };

    ControlEstimate {
        valves,
        control_ports,
        heater_ports,
        optical_ports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessorySet, Capacity, DeviceConfig};

    fn netlist_with(configs: &[DeviceConfig]) -> Netlist {
        let mut net = Netlist::new();
        for &cfg in configs {
            net.add_device(cfg);
        }
        net
    }

    fn mixer() -> DeviceConfig {
        DeviceConfig::new(
            ContainerKind::Ring,
            Capacity::Medium,
            AccessorySet::from_iter([Accessory::Pump]),
        )
        .unwrap()
    }

    fn bare_chamber() -> DeviceConfig {
        DeviceConfig::new(
            ContainerKind::Chamber,
            Capacity::Small,
            AccessorySet::empty(),
        )
        .unwrap()
    }

    #[test]
    fn single_mixer_counts() {
        let net = netlist_with(&[mixer()]);
        let e = estimate(&net, &ControlModel::default(), false);
        // ring 3 + pump 3
        assert_eq!(e.valves, 6);
        assert_eq!(e.control_ports, 6);
        assert_eq!(e.heater_ports, 0);
        assert_eq!(e.total_ports(), 6);
    }

    #[test]
    fn shared_drive_collapses_pump_ports() {
        let net = netlist_with(&[mixer(), mixer(), mixer()]);
        let individual = estimate(&net, &ControlModel::default(), false);
        let shared = estimate(&net, &ControlModel::default(), true);
        assert_eq!(individual.valves, shared.valves);
        // 3 rings*3 + 3 pumps*3 = 18 individual ports; shared: 9 + 3.
        assert_eq!(individual.control_ports, 18);
        assert_eq!(shared.control_ports, 12);
    }

    #[test]
    fn paths_add_routing_valves() {
        let mut net = netlist_with(&[bare_chamber(), bare_chamber()]);
        let ids: Vec<_> = net.devices().iter().map(|d| d.id).collect();
        net.record_transfer(ids[0], ids[1]).unwrap();
        let e = estimate(&net, &ControlModel::default(), false);
        // 2 chambers * 2 + 1 path * 2
        assert_eq!(e.valves, 6);
    }

    #[test]
    fn service_ports_counted_separately() {
        let cfg = DeviceConfig::new(
            ContainerKind::Chamber,
            Capacity::Small,
            AccessorySet::from_iter([
                Accessory::HeatingPad,
                Accessory::OpticalSystem,
                Accessory::CellTrap,
            ]),
        )
        .unwrap();
        let net = netlist_with(&[cfg]);
        let e = estimate(&net, &ControlModel::default(), false);
        assert_eq!(e.valves, 2); // chamber isolation only; trap is passive
        assert_eq!(e.heater_ports, 1);
        assert_eq!(e.optical_ports, 1);
        assert_eq!(e.total_ports(), 4);
    }

    #[test]
    fn shared_drive_without_pumps_is_identity() {
        let net = netlist_with(&[bare_chamber()]);
        let a = estimate(&net, &ControlModel::default(), false);
        let b = estimate(&net, &ControlModel::default(), true);
        assert_eq!(a, b);
    }

    #[test]
    fn custom_model_is_respected() {
        let model = ControlModel {
            chamber_valves: 4,
            path_valves: 0,
            ..ControlModel::default()
        };
        let net = netlist_with(&[bare_chamber()]);
        let e = estimate(&net, &model, false);
        assert_eq!(e.valves, 4);
    }

    #[test]
    fn empty_netlist() {
        let e = estimate(&Netlist::new(), &ControlModel::default(), true);
        assert_eq!(e.valves, 0);
        assert_eq!(e.total_ports(), 0);
    }
}
