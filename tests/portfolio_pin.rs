//! The paper-scale portfolio pin: `portfolio:heuristic+sdc+ilp` on the
//! 120-op single-cell RT-qPCR assay (case 3 of Table 2).
//!
//! A whole-assay `--solver ilp` synthesis is intractable here — on the
//! assay's 40-60-op layers branch-and-bound exhausts any budget without
//! an integer-feasible incumbent (measured: a 2 000-node budget burns
//! minutes and then errors) — so the exec-time pin is taken against the
//! heuristic baseline the race can only improve on, and exactness is
//! covered per layer by `sdc_parity` (the race returns the
//! proven-optimal solution wherever one is computable). What this file
//! pins:
//!
//! 1. the race completes on the 120-op assay and never regresses the
//!    heuristic's execution time (golden value from the committed
//!    `bench/trajectory/` points);
//! 2. the full hybrid schedule is byte-identical at 1 vs 4 threads —
//!    the ILP legs' deterministic pivot-work budget is what makes
//!    bounded exact racing reproducible;
//! 3. the race accounting (`portfolio_races`, `wins_*`) balances over a
//!    whole synthesis and the merged counters show every leg worked.

use mfhls::core::{SolverKind, SynthConfig, Synthesizer};
use mfhls::par::with_threads;

/// The spec-default race: what `--solver portfolio:heuristic+sdc+ilp`
/// resolves to (the ILP leg gets the bounded in-race node budget).
fn race() -> SolverKind {
    SolverKind::Portfolio {
        backends: vec![
            SolverKind::Heuristic {
                improvement_passes: 2,
            },
            SolverKind::Sdc {
                improvement_passes: 2,
            },
            SolverKind::Ilp { max_nodes: 20_000 },
        ],
    }
}

#[test]
fn portfolio_race_matches_heuristic_exec_on_the_120_op_assay() {
    let assay = mfhls::assays::rtqpcr(20);
    assert_eq!(assay.len(), 120, "case 3 changed size");
    let run = |solver: SolverKind| {
        Synthesizer::new(
            SynthConfig::builder()
                .solver(solver)
                .build()
                .expect("valid config"),
        )
        .run(&assay)
        .expect("case 3 must synthesize")
    };
    let heur = run(SolverKind::Heuristic {
        improvement_passes: 2,
    });
    let port = with_threads(1, || run(race()));

    port.schedule
        .validate(&assay)
        .expect("portfolio schedule must satisfy every paper constraint");
    let heur_exec = heur.schedule.exec_time(&assay);
    let port_exec = port.schedule.exec_time(&assay);
    // The race adopts a non-heuristic leg only when it strictly improves
    // the layer objective, so the portfolio can never lose to the
    // heuristic baseline; today the two coincide (274 min fixed, the
    // committed trajectory value).
    assert!(
        port_exec.fixed <= heur_exec.fixed,
        "race regressed the heuristic: {} > {}",
        port_exec.fixed,
        heur_exec.fixed
    );
    assert_eq!(port_exec.fixed, 274, "golden case-3 exec time moved");

    // Whole-synthesis race accounting: every layer of every iteration
    // raced once, and the adopted counters absorbed each leg's work —
    // including the exact legs admitted on the small (10-op) layer.
    let total = &port.final_stats().solver;
    assert!(total.portfolio_races > 0, "no races recorded");
    assert_eq!(
        total.wins_heuristic + total.wins_sdc + total.wins_ilp,
        total.portfolio_races,
        "race accounting out of balance"
    );
    assert!(total.sdc_solves > 0, "sdc leg never ran");
    assert!(total.ilp_solves > 0, "ilp leg never raced the small layer");
    assert!(
        total.pivots > 0,
        "ilp leg reported no pivot work despite racing"
    );

    // Thread-count invariance at paper scale: the deterministic
    // pivot-work budget (not a wall clock) bounds the ILP legs, so the
    // bytes cannot depend on the machine or the worker count.
    let par = with_threads(4, || run(race()));
    assert_eq!(
        port.schedule, par.schedule,
        "portfolio schedule differs between 1 and 4 threads"
    );
    assert_eq!(
        port.final_stats().solver,
        par.final_stats().solver,
        "portfolio solver counters differ between 1 and 4 threads"
    );
}
