//! The synthesis driver: layering, per-layer solving with device
//! inheritance, transport refinement, and progressive re-synthesis (§3.2).

use crate::cache::{CanonicalLayerKey, HitClass, LayerKey, RunCache, SharedLayerCache};
use crate::problem::path_key;
use crate::{
    layer_assay, Assay, CoreError, ExecTime, HybridSchedule, LayerProblem, LayerSchedule,
    LayerSolver, Layering, OpId, SolverKind, TransportConfig, TransportTimes, Weights,
};
use mfhls_chip::{CostModel, DeviceConfig};
use mfhls_obs as obs;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Configuration of a synthesis run.
///
/// Construct one with [`SynthConfig::builder`], which validates the
/// numeric ranges, or start from [`SynthConfig::default`] and mutate
/// fields. The struct is `#[non_exhaustive]`: future revisions may add
/// fields without breaking downstream code, so functional-update literals
/// (`SynthConfig { .., ..Default::default() }`) are reserved to this
/// crate.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SynthConfig {
    /// Maximum number of devices `|D|` allowed on the chip (paper: 25).
    pub max_devices: usize,
    /// Maximum indeterminate operations per layer `t` (paper: 10).
    pub indeterminate_threshold: usize,
    /// Objective weights.
    pub weights: Weights,
    /// Transport estimation settings.
    pub transport: TransportConfig,
    /// Cost model for devices.
    pub costs: CostModel,
    /// Per-layer solver strategy.
    pub solver: SolverKind,
    /// `true` = the paper's component-oriented binding; `false` = the
    /// modified conventional baseline (exact signature classes).
    pub component_oriented: bool,
    /// Re-synthesis continues while the relative execution-time improvement
    /// exceeds this threshold (paper: 10%).
    pub min_improvement: f64,
    /// Hard cap on re-synthesis iterations.
    pub max_iterations: usize,
    /// Memoize per-layer solutions within a run (see [`crate::cache`]):
    /// structurally identical sub-problems revisited by later re-synthesis
    /// iterations skip the solver. Schedules are identical either way; the
    /// flag exists for measurement and as an escape hatch.
    pub layer_cache: bool,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            max_devices: 25,
            indeterminate_threshold: 10,
            weights: Weights::default(),
            transport: TransportConfig::default(),
            costs: CostModel::default(),
            solver: SolverKind::default(),
            component_oriented: true,
            min_improvement: 0.10,
            max_iterations: 6,
            layer_cache: true,
        }
    }
}

impl SynthConfig {
    /// A builder seeded with [`SynthConfig::default`]; the standard way to
    /// customise a configuration now that the struct is
    /// `#[non_exhaustive]`.
    pub fn builder() -> SynthConfigBuilder {
        SynthConfigBuilder {
            config: SynthConfig::default(),
        }
    }

    /// Checks the numeric ranges every synthesis entry point relies on.
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] when `max_devices == 0`,
    /// `max_iterations == 0`, or `min_improvement` is outside `[0, 1]`
    /// (NaN included).
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.max_devices == 0 {
            return Err(CoreError::Config(
                "max_devices must be at least 1".to_owned(),
            ));
        }
        if self.max_iterations == 0 {
            return Err(CoreError::Config(
                "max_iterations must be at least 1".to_owned(),
            ));
        }
        if !(0.0..=1.0).contains(&self.min_improvement) {
            return Err(CoreError::Config(format!(
                "min_improvement must lie in [0, 1], got {}",
                self.min_improvement
            )));
        }
        if let SolverKind::Portfolio { backends } = &self.solver {
            if backends.is_empty() {
                return Err(CoreError::Config(
                    "portfolio requires at least one backend".to_owned(),
                ));
            }
            if let Some(bad) = backends.iter().find(|b| !b.is_portfolio_leaf()) {
                return Err(CoreError::Config(format!(
                    "portfolio backends must be leaf strategies (heuristic|sdc|ilp), got {bad:?}"
                )));
            }
        }
        Ok(())
    }
}

/// Builder for [`SynthConfig`] with range validation at
/// [`SynthConfigBuilder::build`]. Setters follow the field names.
///
/// ```
/// use mfhls_core::SynthConfig;
/// let config = SynthConfig::builder()
///     .max_devices(12)
///     .min_improvement(0.05)
///     .build()
///     .expect("valid configuration");
/// assert_eq!(config.max_devices, 12);
/// assert!(SynthConfig::builder().max_devices(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct SynthConfigBuilder {
    config: SynthConfig,
}

impl SynthConfigBuilder {
    /// Device budget `|D|`.
    pub fn max_devices(mut self, n: usize) -> Self {
        self.config.max_devices = n;
        self
    }

    /// Indeterminate-operations-per-layer threshold `t`.
    pub fn indeterminate_threshold(mut self, t: usize) -> Self {
        self.config.indeterminate_threshold = t;
        self
    }

    /// Objective weights.
    pub fn weights(mut self, w: Weights) -> Self {
        self.config.weights = w;
        self
    }

    /// Transport estimation settings.
    pub fn transport(mut self, t: TransportConfig) -> Self {
        self.config.transport = t;
        self
    }

    /// Device cost model.
    pub fn costs(mut self, c: CostModel) -> Self {
        self.config.costs = c;
        self
    }

    /// Per-layer solver strategy.
    pub fn solver(mut self, s: SolverKind) -> Self {
        self.config.solver = s;
        self
    }

    /// Component-oriented binding (`true`, the paper) or the conventional
    /// exact-signature baseline (`false`).
    pub fn component_oriented(mut self, on: bool) -> Self {
        self.config.component_oriented = on;
        self
    }

    /// Re-synthesis continues while the relative improvement exceeds this.
    pub fn min_improvement(mut self, f: f64) -> Self {
        self.config.min_improvement = f;
        self
    }

    /// Hard cap on re-synthesis iterations.
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.config.max_iterations = n;
        self
    }

    /// Enable or disable per-layer solution memoization.
    pub fn layer_cache(mut self, on: bool) -> Self {
        self.config.layer_cache = on;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// See [`SynthConfig::validate`].
    pub fn build(self) -> Result<SynthConfig, CoreError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Metrics of one (re-)synthesis iteration, as reported in Table 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationStats {
    /// Total assay execution time (hybrid accounting).
    pub exec_time: ExecTime,
    /// Devices used.
    pub device_count: usize,
    /// Transportation paths used.
    pub path_count: usize,
    /// Weighted objective of the full assay.
    pub objective: u64,
    /// Layer sub-problems this iteration served from the memo cache (all
    /// hit classes: exact, canonical, and store fills).
    ///
    /// Diagnostics only: speculation pre-solves layers in parallel, so the
    /// hit/miss split may vary with the thread count even though the
    /// schedule never does.
    pub cache_hits: u64,
    /// The subset of `cache_hits` served through the canonical
    /// (content-addressed) index and translated by position.
    pub cache_canonical_hits: u64,
    /// The subset of `cache_hits` filled by reading through to a
    /// persistent store.
    pub cache_store_hits: u64,
    /// Layer sub-problems this iteration had to solve from scratch.
    pub cache_misses: u64,
    /// Exact-solver work counters summed over this iteration's layers.
    ///
    /// Unlike the cache split, these are *deterministic*: the counters live
    /// inside each cached [`crate::LayerSolution`], so a cache hit replays
    /// the original solve's counters and the sums are identical at any
    /// thread count. All zero under the pure heuristic solver.
    pub solver: crate::SolverStats,
}

/// The outcome of a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The best schedule found.
    pub schedule: HybridSchedule,
    /// The layering the schedule follows.
    pub layering: Layering,
    /// Per-iteration metrics (index 0 = initial synthesis); Table 3 reads
    /// directly from this.
    pub iterations: Vec<IterationStats>,
    /// Wall-clock runtime of the whole run.
    pub runtime: std::time::Duration,
}

impl SynthesisResult {
    /// Stats of the iteration that produced [`SynthesisResult::schedule`].
    pub fn final_stats(&self) -> &IterationStats {
        self.iterations.last().expect("at least one iteration")
    }
}

/// Drives the full synthesis flow of the paper.
#[derive(Debug, Clone)]
pub struct Synthesizer {
    config: SynthConfig,
    shared_cache: Option<Arc<SharedLayerCache>>,
}

impl Synthesizer {
    /// Creates a synthesizer with the given configuration.
    pub fn new(config: SynthConfig) -> Self {
        Synthesizer {
            config,
            shared_cache: None,
        }
    }

    /// Memoizes layer solutions in `cache` instead of a per-run table, so
    /// structurally identical sub-problems are shared *across* runs (the
    /// `mfhls-svc` service hands every worker the same cache). Ignored
    /// while [`SynthConfig::layer_cache`] is `false`. Schedules are
    /// bitwise identical with any cache arrangement — the cache is a pure
    /// accelerator.
    pub fn with_shared_cache(mut self, cache: Arc<SharedLayerCache>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// Synthesises binding and hybrid-scheduling solutions for `assay`,
    /// with progressive re-synthesis until the improvement drops below the
    /// configured threshold.
    ///
    /// # Errors
    ///
    /// Propagates layering and per-layer solver failures; see
    /// [`CoreError`].
    pub fn run(&self, assay: &Assay) -> Result<SynthesisResult, CoreError> {
        self.run_seeded(assay, &[], &[])
    }

    /// Like [`Synthesizer::run`], but seeds the device pool with an already
    /// fabricated library. The seed devices keep their indices in the result
    /// (they are never pruned or renumbered, even when unused), and
    /// `seed_bindable[d] == false` hides seed device `d` from binding
    /// entirely — the recovery path uses this to quarantine failed hardware
    /// while keeping survivor numbering stable.
    ///
    /// # Errors
    ///
    /// Propagates layering and per-layer solver failures; see
    /// [`CoreError`].
    pub fn run_seeded(
        &self,
        assay: &Assay,
        seed_devices: &[DeviceConfig],
        seed_bindable: &[bool],
    ) -> Result<SynthesisResult, CoreError> {
        let started = std::time::Instant::now();
        self.config.validate()?;
        let solver_name = match self.config.solver {
            SolverKind::Heuristic { .. } => "heuristic",
            SolverKind::Ilp { .. } => "ilp",
            SolverKind::Hybrid { .. } => "hybrid",
            SolverKind::Sdc { .. } => "sdc",
            SolverKind::Portfolio { .. } => "portfolio",
        };
        let _span = obs::span(
            obs::Level::Info,
            "synthesis",
            &[
                ("assay", assay.name().into()),
                ("ops", assay.len().into()),
                ("solver", solver_name.into()),
            ],
        );
        let layering = layer_assay(assay, self.config.indeterminate_threshold)?;
        let mut transport = TransportTimes::initial(assay, &self.config.transport);

        let mut iterations = Vec::new();
        let mut best_exec: Option<u64> = None;
        // The best pass so far; its schedule seeds the next iteration's
        // device pool (D of §3.2) and is moved — never cloned — into the
        // result at the end.
        let mut prev: Option<Pass> = None;
        let mut cache: Option<RunCache> =
            self.config.layer_cache.then(|| match &self.shared_cache {
                Some(shared) => RunCache::shared(shared.clone(), assay, &self.config),
                None => RunCache::local(),
            });

        for iter in 0..self.config.max_iterations.max(1) {
            let _iter_span = obs::span(obs::Level::Debug, "iteration", &[("iter", iter.into())]);
            if let (Some(cache), Some(prev)) = (cache.as_mut(), prev.as_ref()) {
                self.speculate(assay, &layering, &transport, prev, seed_bindable, cache);
            }
            let pass = self.synthesize_once(
                assay,
                &layering,
                &transport,
                prev.as_ref(),
                seed_devices,
                seed_bindable,
                cache.as_mut(),
            )?;
            pass.schedule
                .validate(assay)
                .map_err(|e| CoreError::InvalidSchedule(format!("internal solver bug: {e}")))?;
            let mut stats = self.stats_for(assay, &pass.schedule);
            stats.solver = pass.solver;
            if let Some(cache) = cache.as_mut() {
                let counters = cache.take_counters();
                stats.cache_hits = counters.hits();
                stats.cache_canonical_hits = counters.canonical_hits;
                stats.cache_store_hits = counters.store_hits;
                stats.cache_misses = counters.misses;
            }
            let exec_now = stats.exec_time.fixed;
            let objective = stats.objective;
            iterations.push(stats);

            let better = best_exec.is_none_or(|prev_exec| exec_now < prev_exec);
            let improvement = best_exec.map_or(1.0, |prev_exec| {
                if prev_exec == 0 {
                    0.0
                } else {
                    (prev_exec as f64 - exec_now as f64) / prev_exec as f64
                }
            });
            // The §3.2 adopt/reject decision: a pass is adopted when it
            // improves the fixed execution time, and the search continues
            // only when the improvement clears `min_improvement`.
            obs::event(
                obs::Level::Info,
                if better {
                    "pass_adopted"
                } else {
                    "pass_rejected"
                },
                &[
                    ("iter", iter.into()),
                    ("exec_time", exec_now.into()),
                    ("objective", objective.into()),
                    ("improvement", improvement.into()),
                ],
            );
            if better {
                best_exec = Some(exec_now);
                prev = Some(pass);
            }
            // A non-improving pass never continues the search (improvement
            // <= 0 cannot exceed the non-negative threshold), so the best
            // pass is always the one in `prev` when the loop goes on.
            if !(better && improvement > self.config.min_improvement) {
                break;
            }
            let Some(prev) = prev.as_ref() else {
                unreachable!("continuing the search implies an adopted pass");
            };
            // Refine transport estimates from this pass's binding (§4.1).
            let refined = TransportTimes::refined(
                assay,
                &self.config.transport,
                &prev.schedule.device_of(assay),
            );
            if obs::is_enabled() {
                let mut changed = 0u64;
                let mut delta_total = 0u64;
                for op in assay.op_ids() {
                    let (before, after) = (transport.of(op), refined.of(op));
                    if before != after {
                        changed += 1;
                        delta_total += before.abs_diff(after);
                    }
                }
                obs::event(
                    obs::Level::Debug,
                    "transport_refined",
                    &[
                        ("iter", iter.into()),
                        ("changed", changed.into()),
                        ("delta_total", delta_total.into()),
                    ],
                );
            }
            transport = refined;
        }

        let Some(best) = prev else {
            return Err(CoreError::Internal(
                "no synthesis iteration produced a schedule".to_owned(),
            ));
        };
        Ok(SynthesisResult {
            schedule: best.schedule,
            layering,
            iterations,
            runtime: started.elapsed(),
        })
    }

    fn stats_for(&self, assay: &Assay, schedule: &HybridSchedule) -> IterationStats {
        let exec_time = schedule.exec_time(assay);
        let device_count = schedule.used_device_count();
        let path_count = schedule.path_count();
        let w = self.config.weights;
        let mut area = 0u64;
        let mut proc = 0u64;
        for cfg in &schedule.devices {
            area += self.config.costs.device_area(cfg);
            proc += self.config.costs.device_processing(cfg);
        }
        IterationStats {
            objective: w.time * exec_time.fixed
                + w.area * area
                + w.processing * proc
                + w.paths * path_count as u64,
            exec_time,
            device_count,
            path_count,
            cache_hits: 0,
            cache_canonical_hits: 0,
            cache_store_hits: 0,
            cache_misses: 0,
            solver: crate::SolverStats::default(),
        }
    }

    /// Pre-solves next-pass layer sub-problems in parallel to warm `cache`.
    ///
    /// Layers inside a pass are sequentially dependent (each inherits the
    /// previous layer's device pool and paths), so they cannot be solved
    /// concurrently *exactly*. Instead, each layer's sub-problem is
    /// *predicted* from the inputs recorded while solving `prev` — same
    /// structure, current (refined) transport — and solved speculatively on
    /// the pool. Near the re-synthesis fixpoint the predictions match the
    /// real sub-problems and the sequential walk in
    /// [`Synthesizer::synthesize_once`] becomes pure cache hits. The walk
    /// remains the single source of truth: a wrong prediction is simply an
    /// unused cache entry, so schedules are bitwise identical at any thread
    /// count.
    fn speculate(
        &self,
        assay: &Assay,
        layering: &Layering,
        transport: &TransportTimes,
        prev: &Pass,
        seed_bindable: &[bool],
        cache: &mut RunCache,
    ) {
        if mfhls_par::max_threads() <= 1 {
            return;
        }
        let solver_fp = format!("{:?}", self.config.solver);
        let jobs: Vec<(usize, LayerProblem<'_>, LayerKey, CanonicalLayerKey)> = layering
            .layers()
            .iter()
            .enumerate()
            .filter_map(|(li, layer_ops)| {
                // Layer 0's next-pass inputs are fully known (the previous
                // schedule's device pool, no accumulated paths); later
                // layers are predicted from the recorded inputs.
                let (devices, existing_paths, cross_inputs) = if li == 0 {
                    (prev.schedule.devices.clone(), BTreeSet::new(), Vec::new())
                } else {
                    let rec = prev.recorded.get(li)?;
                    (
                        rec.devices.clone(),
                        rec.existing_paths.clone(),
                        rec.cross_inputs.clone(),
                    )
                };
                let problem = LayerProblem {
                    assay,
                    ops: layer_ops.clone(),
                    bindable: bindable_mask(devices.len(), seed_bindable),
                    devices,
                    max_devices: self.config.max_devices,
                    transport,
                    weights: self.config.weights,
                    costs: &self.config.costs,
                    existing_paths,
                    cross_inputs,
                    component_oriented: self.config.component_oriented,
                };
                let key = LayerKey::of(&problem, li);
                let canonical = CanonicalLayerKey::of(&problem, &solver_fp);
                if cache.contains(&key, Some(&canonical)) {
                    return None;
                }
                Some((li, problem, key, canonical))
            })
            .collect();
        obs::diagnostic(
            obs::Level::Debug,
            "speculative_warm",
            &[("jobs", jobs.len().into())],
        );
        let solved = mfhls_par::par_map(&jobs, |(_, problem, _, _)| {
            self.config.solver.solve(problem).ok()
        });
        for ((_, _, key, canonical), sol) in jobs.into_iter().zip(solved) {
            if let Some(sol) = sol {
                cache.warm(key, Some(&canonical), sol);
            }
        }
    }

    /// One full pass over all layers.
    ///
    /// Re-synthesis semantics (§3.2): the first pass grows the device pool
    /// layer by layer (`D_i = D_{i-1} ∪ D'_i`); later passes start from the
    /// *entire* device set of the previous pass, so early layers can reuse
    /// devices that only posterior layers instantiated (Fig. 6). Previous-
    /// pass devices bind capex-free (the chip pays for each device once) and
    /// are pruned when no layer uses them anymore, which keeps the global
    /// pool within `|D|`.
    #[allow(clippy::too_many_arguments)]
    fn synthesize_once(
        &self,
        assay: &Assay,
        layering: &Layering,
        transport: &TransportTimes,
        prev: Option<&Pass>,
        seed_devices: &[DeviceConfig],
        seed_bindable: &[bool],
        mut cache: Option<&mut RunCache>,
    ) -> Result<Pass, CoreError> {
        let mut devices: Vec<DeviceConfig> = prev
            .map(|p| p.schedule.devices.clone())
            .unwrap_or_else(|| seed_devices.to_vec());
        let mut paths: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut layer_schedules: Vec<LayerSchedule> = Vec::new();
        let mut device_of: Vec<Option<usize>> = vec![None; assay.len()];
        let mut recorded: Vec<RecordedLayer> = Vec::with_capacity(layering.num_layers());
        let mut solver_stats = crate::SolverStats::default();
        let solver_fp = format!("{:?}", self.config.solver);

        for (li, layer_ops) in layering.layers().iter().enumerate() {
            // Seed devices carry their quarantine mask through every pass;
            // devices the synthesis itself added are always visible.
            let bindable = bindable_mask(devices.len(), seed_bindable);
            let mut cross_inputs = Vec::new();
            for (p_op, c) in assay.dependencies() {
                if layering.layer_of(c) == li && layering.layer_of(p_op) < li {
                    let Some(pd) = device_of[p_op.index()] else {
                        return Err(CoreError::Internal(format!(
                            "parent o{} of o{} missing from earlier layers",
                            p_op.index(),
                            c.index()
                        )));
                    };
                    cross_inputs.push((c, pd));
                }
            }
            let problem = LayerProblem {
                assay,
                ops: layer_ops.clone(),
                devices: devices.clone(),
                bindable,
                max_devices: self.config.max_devices,
                transport,
                weights: self.config.weights,
                costs: &self.config.costs,
                existing_paths: paths.clone(),
                cross_inputs,
                component_oriented: self.config.component_oriented,
            };
            recorded.push(RecordedLayer {
                devices: problem.devices.clone(),
                existing_paths: problem.existing_paths.clone(),
                cross_inputs: problem.cross_inputs.clone(),
            });
            let sol = match cache.as_deref_mut() {
                Some(cache) => {
                    let key = LayerKey::of(&problem, li);
                    let canonical = CanonicalLayerKey::of(&problem, &solver_fp);
                    match cache.lookup(&key, Some(&canonical)) {
                        Some((sol, class)) => {
                            // Diagnostic, not logical: how speculation warmed
                            // the cache depends on the pool size, and the
                            // hit class on what other requests ran first.
                            let name = match class {
                                HitClass::Exact => "cache_hit",
                                HitClass::Canonical => "cache_canonical_hit",
                                HitClass::Store => "cache_store_hit",
                            };
                            obs::diagnostic(obs::Level::Debug, name, &[("layer", li.into())]);
                            sol
                        }
                        None => {
                            obs::diagnostic(
                                obs::Level::Debug,
                                "cache_miss",
                                &[("layer", li.into())],
                            );
                            let sol = self.config.solver.solve(&problem)?;
                            cache.insert(key, Some(&canonical), sol.clone());
                            sol
                        }
                    }
                }
                None => self.config.solver.solve(&problem)?,
            };
            solver_stats.merge(&sol.stats);
            // Logical even on a cache hit: cached solutions replay the
            // original solve's counters, so these fields are identical at
            // any thread count and with the cache on or off.
            obs::event(
                obs::Level::Info,
                "layer_solved",
                &[
                    ("layer", li.into()),
                    ("ops", sol.slots.len().into()),
                    ("makespan", sol.makespan().into()),
                    ("objective", sol.objective.into()),
                    ("new_devices", sol.new_devices.len().into()),
                    ("new_paths", sol.new_paths.len().into()),
                    ("heuristic_rounds", sol.stats.heuristic_rounds.into()),
                    ("rebind_adoptions", sol.stats.rebind_adoptions.into()),
                    ("ilp_solves", sol.stats.ilp_solves.into()),
                    ("ilp_nodes", sol.stats.nodes.into()),
                    ("lp_pivots", sol.stats.pivots.into()),
                ],
            );
            devices = sol.devices;
            paths.extend(sol.new_paths);
            for s in &sol.slots {
                device_of[s.op.index()] = Some(s.device);
            }
            layer_schedules.push(LayerSchedule::new(sol.slots));
        }

        let schedule = HybridSchedule {
            layers: layer_schedules,
            devices,
            paths,
        };
        let schedule = prune_unused(assay, schedule, seed_devices.len())?;
        Ok(Pass {
            schedule,
            recorded,
            solver: solver_stats,
        })
    }
}

/// Visibility mask for a layer's device pool: seed devices carry their
/// quarantine mask; synthesis-created devices are always visible.
fn bindable_mask(num_devices: usize, seed_bindable: &[bool]) -> Vec<bool> {
    (0..num_devices)
        .map(|d| seed_bindable.get(d).copied().unwrap_or(true))
        .collect()
}

/// One synthesis pass.
struct Pass {
    schedule: HybridSchedule,
    /// The structural inputs each layer's sub-problem was actually solved
    /// with, in layer order — the basis for the next pass's speculative
    /// pre-solving (see [`Synthesizer::speculate`]).
    recorded: Vec<RecordedLayer>,
    /// Exact-solver counters summed over the pass's layer solutions
    /// (cached solutions contribute the counters of their original solve).
    solver: crate::SolverStats,
}

/// The per-layer-varying inputs of one solved layer sub-problem.
struct RecordedLayer {
    devices: Vec<DeviceConfig>,
    existing_paths: BTreeSet<(usize, usize)>,
    cross_inputs: Vec<(OpId, usize)>,
}

/// Drops devices no operation uses (stale leftovers from a previous
/// iteration), renumbering slots and recomputing paths. The first
/// `keep_first` devices (an externally fabricated seed library) are kept
/// even when unused, so their indices survive verbatim.
fn prune_unused(
    assay: &Assay,
    schedule: HybridSchedule,
    keep_first: usize,
) -> Result<HybridSchedule, CoreError> {
    let used: BTreeSet<usize> = schedule
        .layers
        .iter()
        .flat_map(|l| l.ops.iter().map(|s| s.device))
        .collect();
    let keep: Vec<usize> = (0..schedule.devices.len())
        .filter(|&d| d < keep_first || used.contains(&d))
        .collect();
    let remap: std::collections::BTreeMap<usize, usize> =
        keep.iter().enumerate().map(|(n, &o)| (o, n)).collect();

    let devices = keep.iter().map(|&o| schedule.devices[o]).collect();
    let mut layers = Vec::with_capacity(schedule.layers.len());
    for l in schedule.layers {
        let mut slots = Vec::with_capacity(l.ops.len());
        for mut s in l.ops {
            let Some(&d) = remap.get(&s.device) else {
                return Err(CoreError::Internal(format!(
                    "slot for o{} bound to unknown device d{}",
                    s.op.index(),
                    s.device
                )));
            };
            s.device = d;
            slots.push(s);
        }
        layers.push(LayerSchedule::new(slots));
    }
    let mut pruned = HybridSchedule {
        layers,
        devices,
        paths: BTreeSet::new(),
    };
    // Recompute paths from the pruned binding.
    let mut paths = BTreeSet::new();
    for (p, c) in assay.dependencies() {
        let (Some(sp), Some(sc)) = (pruned.slot(p), pruned.slot(c)) else {
            return Err(CoreError::Internal(format!(
                "dependency o{}->o{} has an unscheduled endpoint",
                p.index(),
                c.index()
            )));
        };
        if sp.device != sc.device {
            paths.insert(path_key(sp.device, sc.device));
        }
    }
    pruned.paths = paths;
    Ok(pruned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Duration, Operation};
    use mfhls_chip::{Accessory, Capacity, ContainerKind};

    fn small_assay() -> Assay {
        let mut a = Assay::new("small");
        let mix = a.add_op(
            Operation::new("mix")
                .container(ContainerKind::Ring)
                .capacity(Capacity::Medium)
                .accessory(Accessory::Pump)
                .with_duration(Duration::fixed(10)),
        );
        let capture = a.add_op(
            Operation::new("capture")
                .accessory(Accessory::CellTrap)
                .with_duration(Duration::at_least(3)),
        );
        let detect = a.add_op(
            Operation::new("detect")
                .accessory(Accessory::OpticalSystem)
                .with_duration(Duration::fixed(5)),
        );
        a.add_dependency(mix, capture).unwrap();
        a.add_dependency(capture, detect).unwrap();
        a
    }

    #[test]
    fn builder_validates_ranges() {
        assert!(SynthConfig::builder().build().is_ok());
        for bad in [
            SynthConfig::builder().max_devices(0),
            SynthConfig::builder().max_iterations(0),
            SynthConfig::builder().min_improvement(-0.1),
            SynthConfig::builder().min_improvement(1.5),
            SynthConfig::builder().min_improvement(f64::NAN),
        ] {
            assert!(matches!(bad.build(), Err(CoreError::Config(_))));
        }
        // Field mutation bypasses the builder; the run entry point still
        // rejects the config with the same typed error.
        let config = SynthConfig {
            max_devices: 0,
            ..SynthConfig::default()
        };
        let err = Synthesizer::new(config).run(&small_assay()).unwrap_err();
        assert!(matches!(err, CoreError::Config(_)));
    }

    #[test]
    fn shared_cache_is_a_pure_accelerator_across_runs() {
        let assay = small_assay();
        let baseline = Synthesizer::new(SynthConfig::default())
            .run(&assay)
            .unwrap();
        let shared = std::sync::Arc::new(SharedLayerCache::new(64));
        let cold = Synthesizer::new(SynthConfig::default())
            .with_shared_cache(shared.clone())
            .run(&assay)
            .unwrap();
        let before = shared.stats();
        let warm = Synthesizer::new(SynthConfig::default())
            .with_shared_cache(shared.clone())
            .run(&assay)
            .unwrap();
        let after = shared.stats();
        assert_eq!(baseline.schedule, cold.schedule);
        assert_eq!(baseline.schedule, warm.schedule);
        // The second run demand-hits entries the first run inserted.
        assert!(after.hits > before.hits, "{before:?} -> {after:?}");
        assert!(warm.iterations.iter().map(|it| it.cache_hits).sum::<u64>() > 0);
    }

    #[test]
    fn end_to_end_small() {
        let r = Synthesizer::new(SynthConfig::default())
            .run(&small_assay())
            .unwrap();
        r.schedule.validate(&small_assay()).unwrap();
        assert_eq!(r.layering.num_layers(), 2);
        assert!(!r.iterations.is_empty());
        let t = r.final_stats();
        assert_eq!(t.exec_time.indeterminate_layers, vec![1]);
    }

    #[test]
    fn empty_assay_yields_empty_schedule() {
        let a = Assay::new("empty");
        let r = Synthesizer::new(SynthConfig::default()).run(&a).unwrap();
        assert_eq!(r.schedule.layers.len(), 0);
        assert_eq!(r.schedule.used_device_count(), 0);
    }

    #[test]
    fn iterations_never_regress_the_best() {
        let r = Synthesizer::new(SynthConfig::default())
            .run(&small_assay())
            .unwrap();
        let best_exec = r.schedule.exec_time(&small_assay()).fixed;
        for it in &r.iterations {
            assert!(best_exec <= it.exec_time.fixed);
        }
    }

    #[test]
    fn conventional_uses_at_least_as_many_devices() {
        let assay = small_assay();
        let ours = Synthesizer::new(SynthConfig::default())
            .run(&assay)
            .unwrap();
        let conv = Synthesizer::new(SynthConfig {
            component_oriented: false,
            ..SynthConfig::default()
        })
        .run(&assay)
        .unwrap();
        conv.schedule.validate(&assay).unwrap();
        assert!(
            conv.schedule.used_device_count() >= ours.schedule.used_device_count(),
            "conv {} < ours {}",
            conv.schedule.used_device_count(),
            ours.schedule.used_device_count()
        );
    }

    #[test]
    fn device_budget_is_respected() {
        let mut a = Assay::new("wide");
        for k in 0..10 {
            a.add_op(Operation::new(&format!("x{k}")).with_duration(Duration::fixed(5)));
        }
        let r = Synthesizer::new(SynthConfig {
            max_devices: 3,
            ..SynthConfig::default()
        })
        .run(&a)
        .unwrap();
        assert!(r.schedule.devices.len() <= 3);
        r.schedule.validate(&a).unwrap();
    }

    #[test]
    fn figure6_inheritance_scenario() {
        // o2 (any container + sieve) in layer 0; o1 (ring + sieve + pump) in
        // layer 1. First pass builds a chamber for o2 and a ring for o1;
        // re-synthesis should let o2 ride o1's ring and drop the chamber.
        let mut a = Assay::new("fig6");
        let o2 = a.add_op(
            Operation::new("o2")
                .accessory(Accessory::SieveValve)
                .with_duration(Duration::fixed(5)),
        );
        let gate = a.add_op(
            Operation::new("gate")
                .accessory(Accessory::CellTrap)
                .with_duration(Duration::at_least(2)),
        );
        let o1 = a.add_op(
            Operation::new("o1")
                .container(ContainerKind::Ring)
                .capacity(Capacity::Medium)
                .accessory(Accessory::SieveValve)
                .accessory(Accessory::Pump)
                .with_duration(Duration::fixed(5)),
        );
        a.add_dependency(o2, gate).unwrap();
        a.add_dependency(gate, o1).unwrap();
        let r = Synthesizer::new(SynthConfig::default()).run(&a).unwrap();
        r.schedule.validate(&a).unwrap();
        // o1 needs a ring; the cell trap needs its own device. o2 can share
        // the ring after re-synthesis: at most 2 devices + maybe 1 extra if
        // the first iteration result is kept, but never more than 3.
        assert!(r.schedule.used_device_count() <= 3);
        let final_exec = r.final_stats().exec_time.fixed;
        let initial_exec = r.iterations[0].exec_time.fixed;
        assert!(final_exec <= initial_exec);
    }
}
