//! Property tests of the `mfhls-store/v2` record format (and its v1
//! compatibility) plus the store's crash-replay behaviour, driven by the
//! workspace's vendored [`SplitMix64`] — no external property-testing
//! dependency.
//!
//! The load-bearing properties:
//!
//! * **Round-trip**: any encodable [`SolutionRecord`] decodes back to an
//!   equal value through the full segment scanner.
//! * **Torn-tail totality**: truncating a segment at *every* byte offset
//!   inside its final record yields the clean prefix of records, a torn
//!   tail at the final record's start, and never an error or a wrong
//!   record. This is the on-disk image a SIGKILL mid-`write(2)` leaves.
//! * **Flip detection**: flipping any single bit of a record region is
//!   caught by the checksum (FNV-1a's xor-multiply steps are bijections,
//!   so distinct inputs of equal length cannot collide via one byte) —
//!   a corrupt record is quarantined, never returned.
//! * **Crash replay**: a store reopened over a truncated disk image
//!   serves exactly the records written before the cut and accepts new
//!   appends afterwards.

use mfhls_chip::{Accessory, AccessorySet, ContainerKind, DeviceConfig};
use mfhls_core::{CacheContext, CanonicalLayerKey, LayerKey, LayerKeyParts, OpId};
use mfhls_core::{LayerSolution, ScheduledOp, SolverStats};
use mfhls_graph::rng::SplitMix64;
use mfhls_store::format::{
    empty_segment_v1, encode_record, scan_segment, CanonicalParts, SolutionRecord, SEGMENT_MAGIC,
    SEGMENT_MAGIC_V2,
};
use mfhls_store::{MemIo, SolutionStore, StoreConfig};
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;

/// Uniform `usize` in `[0, n)` — `gen_range_u64` is inclusive on both
/// ends, so wrap it once rather than sprinkle `- 1` everywhere.
fn below(rng: &mut SplitMix64, n: usize) -> usize {
    rng.gen_range_u64(0, n as u64 - 1) as usize
}

fn rng_device(rng: &mut SplitMix64) -> DeviceConfig {
    let container = ContainerKind::ALL[below(rng, ContainerKind::ALL.len())];
    let capacities = container.valid_capacities();
    let capacity = capacities[below(rng, capacities.len())];
    let mut accessories = AccessorySet::empty();
    for a in Accessory::ALL {
        if rng.gen_bool(0.3) {
            accessories.insert(a);
        }
    }
    DeviceConfig::new(container, capacity, accessories).expect("capacity drawn from valid set")
}

fn rng_key(rng: &mut SplitMix64) -> LayerKeyParts {
    let n_ops = below(rng, 6);
    let n_dev = 1 + below(rng, 4);
    LayerKeyParts {
        layer: below(rng, 12),
        ops: (0..n_ops).map(|_| OpId(below(rng, 64))).collect(),
        devices: (0..n_dev).map(|_| rng_device(rng)).collect(),
        bindable: (0..n_dev).map(|_| rng.gen_bool(0.5)).collect(),
        existing_paths: (0..below(rng, 4))
            .map(|_| (below(rng, 8), below(rng, 8)))
            .collect(),
        cross_inputs: (0..below(rng, 3))
            .map(|_| (OpId(below(rng, 64)), below(rng, 8)))
            .collect(),
        transport: (0..n_ops).map(|_| below(rng, 100) as u64).collect(),
    }
}

fn rng_solution(rng: &mut SplitMix64) -> LayerSolution {
    let n_slots = 1 + below(rng, 5);
    let n_dev = 1 + below(rng, 5);
    let mut new_paths = BTreeSet::new();
    for _ in 0..below(rng, 4) {
        new_paths.insert((below(rng, n_dev), below(rng, n_dev)));
    }
    LayerSolution {
        slots: (0..n_slots)
            .map(|_| ScheduledOp {
                op: OpId(below(rng, 64)),
                device: below(rng, n_dev),
                start: below(rng, 1000) as u64,
                duration: 1 + below(rng, 499) as u64,
                transport: below(rng, 50) as u64,
            })
            .collect(),
        devices: (0..n_dev).map(|_| rng_device(rng)).collect(),
        new_devices: (0..below(rng, n_dev + 1))
            .map(|_| below(rng, n_dev))
            .collect(),
        new_paths,
        objective: rng.next_u64() >> 16,
        stats: SolverStats {
            ilp_solves: below(rng, 10) as u64,
            proven_optimal: below(rng, 10) as u64,
            nodes: rng.next_u64() >> 40,
            pivots: rng.next_u64() >> 40,
            warm_solves: below(rng, 10) as u64,
            cold_solves: below(rng, 10) as u64,
            incumbents_supplied: below(rng, 10) as u64,
            incumbents_diving: below(rng, 10) as u64,
            incumbents_search: below(rng, 10) as u64,
            heuristic_rounds: below(rng, 10) as u64,
            rebind_adoptions: below(rng, 10) as u64,
            sdc_solves: below(rng, 4) as u64,
            sdc_constraints: below(rng, 200) as u64,
            sdc_retracts: below(rng, 50) as u64,
            sdc_relaxations: below(rng, 500) as u64,
            portfolio_races: below(rng, 2) as u64,
            wins_heuristic: below(rng, 2) as u64,
            wins_sdc: below(rng, 2) as u64,
            wins_ilp: below(rng, 2) as u64,
        },
    }
}

fn rng_record(rng: &mut SplitMix64) -> SolutionRecord {
    // Half the corpus carries a canonical key, so every property below
    // (round-trip, torn tails, bit flips) covers both record kinds.
    let canonical = rng.gen_bool(0.5).then(|| CanonicalParts {
        canon: (0..8 + below(rng, 24))
            .map(|_| rng.next_u64() as u8)
            .collect(),
        positional: (0..8 + below(rng, 24))
            .map(|_| rng.next_u64() as u8)
            .collect(),
    });
    SolutionRecord {
        context: format!("cfg:prop-{}|", below(rng, 1 << 20)),
        key: rng_key(rng),
        solution: rng_solution(rng),
        canonical,
    }
}

fn segment_of(records: &[SolutionRecord]) -> Vec<u8> {
    let mut seg = SEGMENT_MAGIC.to_vec();
    for r in records {
        seg.extend_from_slice(&encode_record(r));
    }
    seg
}

#[test]
fn random_records_round_trip_through_the_segment_scanner() {
    let mut rng = SplitMix64::seed_from_u64(0x5eed_0001);
    for _ in 0..64 {
        let record = rng_record(&mut rng);
        let scan = scan_segment(&segment_of(std::slice::from_ref(&record)))
            .expect("well-formed segment scans");
        assert_eq!(scan.records, vec![record]);
        assert!(scan.quarantined.is_empty());
        assert_eq!(scan.torn_tail_at, None);
    }
}

#[test]
fn multi_record_segments_scan_in_order() {
    let mut rng = SplitMix64::seed_from_u64(0x5eed_0002);
    let records: Vec<SolutionRecord> = (0..32).map(|_| rng_record(&mut rng)).collect();
    let seg = segment_of(&records);
    let scan = scan_segment(&seg).expect("well-formed segment scans");
    assert_eq!(scan.records, records);
    assert!(scan.quarantined.is_empty());
    assert_eq!(scan.clean_len, seg.len() as u64);
}

#[test]
fn truncation_at_every_byte_offset_of_the_final_record_is_a_torn_tail() {
    let mut rng = SplitMix64::seed_from_u64(0x5eed_0003);
    let records: Vec<SolutionRecord> = (0..3).map(|_| rng_record(&mut rng)).collect();
    let seg = segment_of(&records);
    let boundary = segment_of(&records[..2]).len();
    for cut in boundary..seg.len() {
        let scan = scan_segment(&seg[..cut])
            .unwrap_or_else(|e| panic!("truncation at {cut} must scan, got {e:?}"));
        assert_eq!(scan.records, records[..2], "cut at {cut}");
        assert!(scan.quarantined.is_empty(), "cut at {cut}");
        assert_eq!(scan.clean_len, boundary as u64, "cut at {cut}");
        if cut == boundary {
            assert_eq!(scan.torn_tail_at, None, "clean cut is not torn");
        } else {
            assert_eq!(scan.torn_tail_at, Some(boundary as u64), "cut at {cut}");
        }
    }
}

#[test]
fn any_single_bit_flip_in_a_record_is_never_served_as_valid() {
    let mut rng = SplitMix64::seed_from_u64(0x5eed_0004);
    let record = rng_record(&mut rng);
    let seg = segment_of(std::slice::from_ref(&record));
    for at in SEGMENT_MAGIC.len()..seg.len() {
        for bit in 0..8 {
            let mut bad = seg.clone();
            bad[at] ^= 1 << bit;
            let scan = scan_segment(&bad)
                .unwrap_or_else(|e| panic!("flip at {at}.{bit}: header intact, got {e:?}"));
            assert!(
                scan.records.is_empty(),
                "flip at byte {at} bit {bit} produced a record"
            );
            assert!(
                !scan.quarantined.is_empty() || scan.torn_tail_at.is_some(),
                "flip at byte {at} bit {bit} went unnoticed"
            );
        }
    }
}

#[test]
fn crash_truncated_store_reloads_the_clean_prefix_and_keeps_working() {
    let dir = Path::new("/mem/crash");
    let seg_path = dir.join("segment-00001.mfs");
    let ctx = CacheContext::from_canonical("cfg:crash|");
    let mut rng = SplitMix64::seed_from_u64(0x5eed_0005);
    let entries: Vec<(LayerKey, LayerSolution)> = (0..6)
        .map(|_| {
            (
                LayerKey::from_parts(rng_key(&mut rng)),
                rng_solution(&mut rng),
            )
        })
        .collect();

    // Write a pristine store, then capture its bytes.
    let io = Arc::new(MemIo::new());
    let store = SolutionStore::open(dir, StoreConfig::default(), io.clone());
    for (key, sol) in &entries {
        store
            .append(&ctx, key, None, sol)
            .expect("MemIo append succeeds");
    }
    let full = io.contents(&seg_path).expect("segment exists");
    drop(store);

    // Record boundaries: reopen at every record count to learn offsets.
    let scan = scan_segment(&full).expect("pristine segment scans");
    assert_eq!(scan.records.len(), entries.len());

    // Chop the image at every byte offset ("SIGKILL landed here") and
    // reopen: the store must load exactly the records wholly before the
    // cut, quarantine the tail, stay writable, and never error.
    for cut in SEGMENT_MAGIC.len()..full.len() {
        let io = Arc::new(MemIo::new());
        io.set_contents(&seg_path, full[..cut].to_vec());
        let reopened = SolutionStore::open(dir, StoreConfig::default(), io.clone());
        let stats = reopened.stats();
        assert!(!stats.degraded, "cut at {cut}: {stats:?}");
        let expect_loaded = scan_segment(&full[..cut])
            .expect("truncation scans")
            .records;
        assert_eq!(stats.loaded, expect_loaded.len() as u64, "cut at {cut}");
        for rec in &expect_loaded {
            let key = LayerKey::from_parts(rec.key.clone());
            assert_eq!(
                reopened.fetch(&CacheContext::from_canonical(&rec.context), &key),
                Some(rec.solution.clone()),
                "cut at {cut}"
            );
        }
        // The torn tail was truncated away, so a fresh append must land
        // cleanly and survive yet another reopen.
        let (key, sol) = &entries[entries.len() - 1];
        reopened
            .append(&ctx, key, None, sol)
            .expect("append after tail repair");
        let third = SolutionStore::open(dir, StoreConfig::default(), io);
        assert_eq!(third.fetch(&ctx, key).as_ref(), Some(sol), "cut at {cut}");
    }
}

#[test]
fn a_v1_directory_round_trips_and_upgrades_to_canonical_service() {
    let dir = Path::new("/mem/upgrade");
    let seg_path = dir.join("segment-00001.mfs");
    let mut rng = SplitMix64::seed_from_u64(0x5eed_0006);

    // Fabricate a directory exactly as a v1 writer left it: v1 magic,
    // kind-1 records only.
    let mut v1_records = Vec::new();
    let mut seg = empty_segment_v1();
    for _ in 0..4 {
        let mut rec = rng_record(&mut rng);
        rec.canonical = None;
        seg.extend_from_slice(&encode_record(&rec));
        v1_records.push(rec);
    }
    let io = Arc::new(MemIo::new());
    io.set_contents(&seg_path, seg);

    let store = SolutionStore::open(dir, StoreConfig::default(), io.clone());
    let stats = store.stats();
    assert!(!stats.degraded, "{stats:?}");
    assert_eq!(stats.loaded, v1_records.len() as u64);
    assert_eq!(stats.quarantined, 0);

    // Exact fetches work straight off the v1 image...
    let rec = &v1_records[0];
    let key = LayerKey::from_parts(rec.key.clone());
    let rec_ctx = CacheContext::from_canonical(&rec.context);
    assert_eq!(store.fetch(&rec_ctx, &key), Some(rec.solution.clone()));

    // ...but canonical lookups miss until the entry is re-persisted with
    // its canonical key, which upgrades it in place via a kind-2 append.
    let ck = CanonicalLayerKey::from_raw(
        b"canon-upgrade".to_vec(),
        b"pos-upgrade".to_vec(),
        rec.key.ops.clone(),
    );
    assert_eq!(store.fetch_canonical(&ck), None);
    store
        .append(&rec_ctx, &key, Some(&ck), &rec.solution)
        .expect("upgrade append");
    let (ops, sol) = store.fetch_canonical(&ck).expect("canonical hit");
    assert_eq!(ops, rec.key.ops);
    assert_eq!(sol, rec.solution);

    // The upgrade survives a reload without double-counting the entry.
    let reopened = SolutionStore::open(dir, StoreConfig::default(), io.clone());
    let (ops, sol) = reopened.fetch_canonical(&ck).expect("hit after reload");
    assert_eq!(ops, rec.key.ops);
    assert_eq!(sol, rec.solution);
    assert_eq!(reopened.stats().entries, v1_records.len());

    // A fresh directory starts life with the v2 magic.
    let fresh_dir = Path::new("/mem/fresh");
    let _fresh = SolutionStore::open(fresh_dir, StoreConfig::default(), io.clone());
    let fresh_seg = io
        .contents(&fresh_dir.join("segment-00001.mfs"))
        .expect("fresh segment exists");
    assert_eq!(&fresh_seg[..8], SEGMENT_MAGIC_V2);
}
