//! The layer-solver abstraction: exact ILP, scalable heuristic, or hybrid.

use crate::{CoreError, LayerProblem, ScheduledOp};
use mfhls_chip::DeviceConfig;
use std::collections::BTreeSet;

/// Work counters of the layer solvers (exact MILP path plus the heuristic
/// improvement loop), aggregated per layer solution, per re-synthesis
/// iteration and per benchmark case.
///
/// All fields are exact integers so the type stays `Eq`-comparable and the
/// determinism contract extends to solver diagnostics: the counters are
/// stored inside [`LayerSolution`], so a layer-cache hit replays exactly the
/// counters of the original solve and per-iteration sums are identical at
/// any thread count. Heuristic-only solutions carry zero ILP counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverStats {
    /// Exact MILP layer solves attempted (0 for pure-heuristic solutions).
    pub ilp_solves: u64,
    /// Of those, how many terminated with proven optimality.
    pub proven_optimal: u64,
    /// Branch-and-bound nodes explored.
    pub nodes: u64,
    /// Simplex pivots across all LP solves (nodes, probes, dives).
    pub pivots: u64,
    /// LP solves that reused the carried (warm) basis.
    pub warm_solves: u64,
    /// LP solves started from the cold all-slack basis.
    pub cold_solves: u64,
    /// Searches whose final incumbent was the caller-supplied warm start.
    pub incumbents_supplied: u64,
    /// Searches whose final incumbent came from the diving heuristic.
    pub incumbents_diving: u64,
    /// Searches whose final incumbent came from the tree search.
    pub incumbents_search: u64,
    /// Heuristic re-binding improvement rounds actually executed (bounded
    /// by `improvement_passes`; the loop exits early on a fixpoint).
    pub heuristic_rounds: u64,
    /// Re-binding candidates adopted across those rounds.
    pub rebind_adoptions: u64,
    /// SDC skeleton solves performed (0 unless the SDC backend ran).
    pub sdc_solves: u64,
    /// Difference constraints added to SDC systems (skeleton + feedback).
    pub sdc_constraints: u64,
    /// Constraints retracted from SDC systems between feedback passes.
    pub sdc_retracts: u64,
    /// Queue-Bellman-Ford value raises across all incremental SDC updates
    /// (the SDC analogue of `pivots`).
    pub sdc_relaxations: u64,
    /// Portfolio races run (one per layer solved by
    /// [`SolverKind::Portfolio`]).
    pub portfolio_races: u64,
    /// Races adopted from a heuristic backend.
    pub wins_heuristic: u64,
    /// Races adopted from an SDC backend.
    pub wins_sdc: u64,
    /// Races adopted from an ILP backend.
    pub wins_ilp: u64,
}

impl SolverStats {
    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &SolverStats) {
        self.ilp_solves += other.ilp_solves;
        self.proven_optimal += other.proven_optimal;
        self.nodes += other.nodes;
        self.pivots += other.pivots;
        self.warm_solves += other.warm_solves;
        self.cold_solves += other.cold_solves;
        self.incumbents_supplied += other.incumbents_supplied;
        self.incumbents_diving += other.incumbents_diving;
        self.incumbents_search += other.incumbents_search;
        self.heuristic_rounds += other.heuristic_rounds;
        self.rebind_adoptions += other.rebind_adoptions;
        self.sdc_solves += other.sdc_solves;
        self.sdc_constraints += other.sdc_constraints;
        self.sdc_retracts += other.sdc_retracts;
        self.sdc_relaxations += other.sdc_relaxations;
        self.portfolio_races += other.portfolio_races;
        self.wins_heuristic += other.wins_heuristic;
        self.wins_sdc += other.wins_sdc;
        self.wins_ilp += other.wins_ilp;
    }

    /// Fraction of LP solves that reused a carried basis (0.0 when no LP
    /// was solved).
    pub fn warm_start_rate(&self) -> f64 {
        let total = self.warm_solves + self.cold_solves;
        if total == 0 {
            0.0
        } else {
            self.warm_solves as f64 / total as f64
        }
    }
}

/// Solution of one layer's scheduling & binding problem.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSolution {
    /// One slot per operation of the layer.
    pub slots: Vec<ScheduledOp>,
    /// The complete device list after this layer (existing devices first,
    /// with unchanged configs; devices created by this layer appended).
    pub devices: Vec<DeviceConfig>,
    /// Indices (into `devices`) of the devices created by this layer.
    pub new_devices: Vec<usize>,
    /// Paths introduced by this layer's transfers (unordered index pairs),
    /// including paths to cross-layer parent devices.
    pub new_paths: BTreeSet<(usize, usize)>,
    /// The weighted objective value this solution was costed at.
    pub objective: u64,
    /// Solver work counters behind this solution (ILP counters are all
    /// zero when the heuristic produced it without an ILP attempt).
    pub stats: SolverStats,
}

impl LayerSolution {
    /// Fixed makespan of the layer (indeterminate ops at minimum duration).
    pub fn makespan(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.start + s.duration)
            .max()
            .unwrap_or(0)
    }
}

/// A strategy for solving one layer.
pub trait LayerSolver {
    /// Solves the layer problem.
    ///
    /// # Errors
    ///
    /// Implementations return [`CoreError::DeviceBudgetExhausted`] when an
    /// operation cannot be bound within `problem.max_devices`, and solver
    /// back-end errors as [`CoreError::Ilp`].
    fn solve(&self, problem: &LayerProblem<'_>) -> Result<LayerSolution, CoreError>;
}

/// Built-in solver strategies.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum SolverKind {
    /// Priority list scheduling + greedy binding + re-binding improvement.
    /// Scales to the paper's 120-operation cases.
    Heuristic {
        /// Number of re-binding improvement passes (0 = construction only).
        improvement_passes: usize,
    },
    /// The faithful ILP model of §4, solved exactly by `mfhls-ilp`. The
    /// warm-started dual simplex makes this practical for paper-scale
    /// layers (~25 operations with a small device budget); very large
    /// layers should still prefer [`SolverKind::Hybrid`].
    Ilp {
        /// Branch-and-bound node budget.
        max_nodes: usize,
    },
    /// Run the heuristic, then attempt the ILP within the given node budget
    /// (only when the layer is small enough), and keep the better solution.
    Hybrid {
        /// Node budget for the ILP attempt.
        max_nodes: usize,
        /// Only attempt the ILP when the layer has at most this many ops.
        ilp_op_limit: usize,
        /// Heuristic improvement passes.
        improvement_passes: usize,
    },
    /// Incremental system-of-difference-constraints scheduling: the layer's
    /// dependency skeleton is solved by incremental shortest-path
    /// relaxation, then resource/device bindings are legalized in skeleton
    /// order (see [`crate::sdc_model`]).
    Sdc {
        /// Legalize-and-feed-back passes after the initial skeleton order.
        improvement_passes: usize,
    },
    /// Deterministic portfolio racing: run every listed backend on the
    /// layer and adopt the first strictly-improving result *in listed
    /// order*. Non-ILP backends race concurrently under `mfhls-par` (the
    /// ordered reduction keeps the outcome byte-identical at any thread
    /// count); ILP backends run last, sequentially, warm-bounded by the
    /// best objective found so far (`cutoff`), so the exact search only
    /// pays for layers the cheap backends left slack on. The adopted
    /// solution's counters absorb the losers' work, and the race itself is
    /// tallied in `portfolio_races` / `wins_*`.
    ///
    /// Backends must be leaf strategies (`heuristic`, `sdc`, `ilp`) —
    /// nesting `portfolio` or `hybrid` is a configuration error. ILP legs
    /// sit out layers larger than [`PORTFOLIO_ILP_OP_LIMIT`] ops (past
    /// paper scale, branch-and-bound reliably exhausts any budget without
    /// an integer-feasible incumbent, so racing it buys nothing) and run
    /// under the deterministic [`PORTFOLIO_ILP_PIVOT_WORK`] work budget
    /// — both gates depend only on the problem, never the clock, so a
    /// race is byte-identical across machines and thread counts.
    Portfolio {
        /// The backends to race, in adoption-priority order.
        backends: Vec<SolverKind>,
    },
}

/// Largest layer (in ops) an ILP leg will race inside a
/// [`SolverKind::Portfolio`]. Mirrors the reasoning behind
/// [`SolverKind::Hybrid`]'s `ilp_op_limit`: the warm-started simplex is
/// practical for paper-scale layers (~25 operations); beyond that the
/// exact search burns its whole budget without producing an incumbent,
/// even cutoff-bounded.
pub const PORTFOLIO_ILP_OP_LIMIT: usize = 25;

/// Deterministic work budget (in tableau cells, see
/// [`IlpLayerSolver::pivot_work`](crate::ilp_model::IlpLayerSolver)) of
/// each ILP leg raced inside a [`SolverKind::Portfolio`]. A node budget
/// cannot bound a race's wall-clock — on the 120-op assay's densest
/// layer a *single* root LP costs ~8 200 pivots at milliseconds each, so
/// 20 000 nodes would run for hours — and a wall-clock limit would trade
/// the hang for nondeterminism; a work budget is both time-proportional
/// and machine-independent, so the race stays fast *and* byte-identical
/// everywhere. 10⁹ cells means ~350 pivots (≲1 s) on that densest
/// ~1 500-row model — comfortably above the ~230 it needs to prune its
/// refined iterations — ~30 on the pathological 5 000-row kinase layer
/// that can't be closed anyway, and tens of thousands on the small
/// corpus layers where the exact search actually closes gaps.
pub const PORTFOLIO_ILP_PIVOT_WORK: u64 = 1_000_000_000;

impl Default for SolverKind {
    fn default() -> Self {
        SolverKind::Heuristic {
            improvement_passes: 2,
        }
    }
}

impl SolverKind {
    /// Whether this strategy may appear inside a
    /// [`SolverKind::Portfolio`]'s backend list.
    pub fn is_portfolio_leaf(&self) -> bool {
        matches!(
            self,
            SolverKind::Heuristic { .. } | SolverKind::Sdc { .. } | SolverKind::Ilp { .. }
        )
    }
}

impl LayerSolver for SolverKind {
    fn solve(&self, problem: &LayerProblem<'_>) -> Result<LayerSolution, CoreError> {
        match self {
            SolverKind::Heuristic { improvement_passes } => {
                crate::heuristic::HeuristicLayerSolver {
                    improvement_passes: *improvement_passes,
                }
                .solve(problem)
            }
            SolverKind::Sdc { improvement_passes } => crate::sdc_model::SdcLayerSolver {
                improvement_passes: *improvement_passes,
            }
            .solve(problem),
            SolverKind::Ilp { max_nodes } => crate::ilp_model::IlpLayerSolver {
                max_nodes: *max_nodes,
                ..crate::ilp_model::IlpLayerSolver::default()
            }
            .solve(problem),
            SolverKind::Portfolio { backends } => solve_portfolio(backends, problem),
            &SolverKind::Hybrid {
                max_nodes,
                ilp_op_limit,
                improvement_passes,
            } => {
                let mut heur =
                    crate::heuristic::HeuristicLayerSolver { improvement_passes }.solve(problem)?;
                if problem.ops.len() > ilp_op_limit {
                    return Ok(heur);
                }
                let (exact, stats) = crate::ilp_model::IlpLayerSolver {
                    max_nodes,
                    time_limit: Some(std::time::Duration::from_secs(10)),
                    cutoff: Some(heur.objective),
                    ..crate::ilp_model::IlpLayerSolver::default()
                }
                .solve_with_stats(problem);
                match exact {
                    Ok(exact) if exact.objective < heur.objective => Ok(exact),
                    _ => {
                        // Keep the heuristic solution but record the work the
                        // (pruned or unlucky) exact attempt performed.
                        heur.stats.merge(&stats);
                        Ok(heur)
                    }
                }
            }
        }
    }
}

/// The deterministic portfolio race (see [`SolverKind::Portfolio`]).
fn solve_portfolio(
    backends: &[SolverKind],
    problem: &LayerProblem<'_>,
) -> Result<LayerSolution, CoreError> {
    if backends.is_empty() {
        return Err(CoreError::Config(
            "portfolio requires at least one backend".to_owned(),
        ));
    }
    if let Some(bad) = backends.iter().find(|b| !b.is_portfolio_leaf()) {
        return Err(CoreError::Config(format!(
            "portfolio backends must be leaf strategies (heuristic|sdc|ilp), got {bad:?}"
        )));
    }
    // Race the cheap (non-ILP) backends concurrently. `par_map` returns
    // results in input order, so adoption below is independent of thread
    // count and interleaving.
    let cheap: Vec<(usize, &SolverKind)> = backends
        .iter()
        .enumerate()
        .filter(|(_, b)| !matches!(b, SolverKind::Ilp { .. }))
        .collect();
    let raced: Vec<Result<LayerSolution, CoreError>> =
        mfhls_par::par_map(&cheap, |(_, b)| b.solve(problem));

    let mut best: Option<(usize, LayerSolution)> = None;
    let mut losers = SolverStats {
        portfolio_races: 1,
        ..SolverStats::default()
    };
    let mut first_err: Option<CoreError> = None;
    for ((idx, _), result) in cheap.iter().zip(raced) {
        match result {
            Ok(sol) => match &best {
                Some((_, b)) if sol.objective >= b.objective => losers.merge(&sol.stats),
                _ => {
                    if let Some((_, prev)) = best.take() {
                        losers.merge(&prev.stats);
                    }
                    best = Some((*idx, sol));
                }
            },
            Err(e) => {
                first_err.get_or_insert(e);
            }
        }
    }
    // ILP backends run last, sequentially, bounded by the incumbent: with
    // `cutoff` set they only return solutions strictly better than the
    // best cheap result, so "Ok" here always means adoption-worthy.
    for (idx, backend) in backends.iter().enumerate() {
        let &SolverKind::Ilp { max_nodes } = backend else {
            continue;
        };
        if problem.ops.len() > PORTFOLIO_ILP_OP_LIMIT {
            continue;
        }
        let (exact, work) = crate::ilp_model::IlpLayerSolver {
            max_nodes,
            cutoff: best.as_ref().map(|(_, b)| b.objective),
            pivot_work: Some(PORTFOLIO_ILP_PIVOT_WORK),
            ..crate::ilp_model::IlpLayerSolver::default()
        }
        .solve_with_stats(problem);
        match exact {
            Ok(sol)
                if best
                    .as_ref()
                    .is_none_or(|(_, b)| sol.objective < b.objective) =>
            {
                if let Some((_, prev)) = best.take() {
                    losers.merge(&prev.stats);
                }
                best = Some((idx, sol));
            }
            Ok(sol) => losers.merge(&sol.stats),
            Err(e) => {
                losers.merge(&work);
                first_err.get_or_insert(e);
            }
        }
    }
    let Some((winner, mut sol)) = best else {
        return Err(first_err.unwrap_or_else(|| {
            CoreError::Internal("portfolio race produced no result".to_owned())
        }));
    };
    match backends.get(winner) {
        Some(SolverKind::Sdc { .. }) => losers.wins_sdc += 1,
        Some(SolverKind::Ilp { .. }) => losers.wins_ilp += 1,
        _ => losers.wins_heuristic += 1,
    }
    sol.stats.merge(&losers);
    Ok(sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assay, Duration, Operation, TransportConfig, TransportTimes, Weights};
    use mfhls_chip::{Accessory, Capacity, ContainerKind, CostModel};

    fn diamond_assay() -> Assay {
        let mut a = Assay::new("diamond");
        let src = a.add_op(
            Operation::new("src")
                .container(ContainerKind::Ring)
                .capacity(Capacity::Medium)
                .accessory(Accessory::Pump)
                .with_duration(Duration::fixed(4)),
        );
        let l = a.add_op(
            Operation::new("l")
                .accessory(Accessory::HeatingPad)
                .with_duration(Duration::fixed(6)),
        );
        let r = a.add_op(
            Operation::new("r")
                .accessory(Accessory::HeatingPad)
                .with_duration(Duration::fixed(5)),
        );
        let sink = a.add_op(
            Operation::new("sink")
                .accessory(Accessory::OpticalSystem)
                .with_duration(Duration::fixed(3)),
        );
        a.add_dependency(src, l).unwrap();
        a.add_dependency(src, r).unwrap();
        a.add_dependency(l, sink).unwrap();
        a.add_dependency(r, sink).unwrap();
        a
    }

    fn problem<'a>(
        assay: &'a Assay,
        transport: &'a TransportTimes,
        costs: &'a CostModel,
    ) -> LayerProblem<'a> {
        LayerProblem {
            assay,
            ops: assay.op_ids().collect(),
            devices: vec![],
            bindable: vec![],
            max_devices: 6,
            transport,
            weights: Weights::default(),
            costs,
            existing_paths: BTreeSet::new(),
            cross_inputs: vec![],
            component_oriented: true,
        }
    }

    #[test]
    fn portfolio_equals_best_individual_backend() {
        let assay = diamond_assay();
        let transport = TransportTimes::initial(&assay, &TransportConfig::default());
        let costs = CostModel::default();
        let p = problem(&assay, &transport, &costs);
        let backends = vec![
            SolverKind::Heuristic {
                improvement_passes: 2,
            },
            SolverKind::Sdc {
                improvement_passes: 2,
            },
            SolverKind::Ilp { max_nodes: 50_000 },
        ];
        let individual_best = backends
            .iter()
            .map(|b| b.solve(&p).unwrap().objective)
            .min()
            .unwrap();
        let raced = SolverKind::Portfolio { backends }.solve(&p).unwrap();
        assert_eq!(raced.objective, individual_best);
        assert_eq!(raced.stats.portfolio_races, 1);
        assert_eq!(
            raced.stats.wins_heuristic + raced.stats.wins_sdc + raced.stats.wins_ilp,
            1
        );
        // The race absorbed the work of every backend that actually ran.
        assert_eq!(raced.stats.sdc_solves, 1);
        assert!(raced.stats.heuristic_rounds > 0 || raced.stats.rebind_adoptions == 0);
    }

    #[test]
    fn portfolio_is_thread_count_invariant() {
        let assay = diamond_assay();
        let transport = TransportTimes::initial(&assay, &TransportConfig::default());
        let costs = CostModel::default();
        let p = problem(&assay, &transport, &costs);
        let spec = SolverKind::Portfolio {
            backends: vec![
                SolverKind::Heuristic {
                    improvement_passes: 2,
                },
                SolverKind::Sdc {
                    improvement_passes: 2,
                },
            ],
        };
        let one = mfhls_par::with_threads(1, || spec.solve(&p).unwrap());
        let four = mfhls_par::with_threads(4, || spec.solve(&p).unwrap());
        assert_eq!(one, four);
    }

    #[test]
    fn empty_and_nested_portfolios_are_config_errors() {
        let assay = diamond_assay();
        let transport = TransportTimes::initial(&assay, &TransportConfig::default());
        let costs = CostModel::default();
        let p = problem(&assay, &transport, &costs);
        let empty = SolverKind::Portfolio { backends: vec![] };
        assert!(matches!(empty.solve(&p), Err(CoreError::Config(_))));
        let nested = SolverKind::Portfolio {
            backends: vec![SolverKind::Portfolio { backends: vec![] }],
        };
        assert!(matches!(nested.solve(&p), Err(CoreError::Config(_))));
        let hybrid = SolverKind::Portfolio {
            backends: vec![SolverKind::Hybrid {
                max_nodes: 1,
                ilp_op_limit: 1,
                improvement_passes: 0,
            }],
        };
        assert!(matches!(hybrid.solve(&p), Err(CoreError::Config(_))));
    }

    #[test]
    fn ilp_cutoff_failures_still_count_their_work() {
        let assay = diamond_assay();
        let transport = TransportTimes::initial(&assay, &TransportConfig::default());
        let costs = CostModel::default();
        let p = problem(&assay, &transport, &costs);
        // A 1-node budget can't finish the exact search; the heuristic
        // result must survive with the pruned attempt's counters merged.
        let spec = SolverKind::Portfolio {
            backends: vec![
                SolverKind::Heuristic {
                    improvement_passes: 2,
                },
                SolverKind::Ilp { max_nodes: 1 },
            ],
        };
        let sol = spec.solve(&p).unwrap();
        assert_eq!(sol.stats.portfolio_races, 1);
        assert_eq!(sol.stats.ilp_solves, 1);
    }
}
