//! Component-oriented operation definitions (§2.2).

use mfhls_chip::{Accessory, Capacity, ContainerKind, Requirements};

/// Identifier of an operation within an [`Assay`](crate::Assay).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub usize);

impl OpId {
    /// Dense index of the operation.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Execution duration of an operation (§2.2, attribute *b*): either an
/// accurate value or *indeterminate* with a known minimum (e.g. single-cell
/// capture, which reruns until exactly one cell is trapped).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Duration {
    /// Exact duration in time units (minutes throughout this workspace).
    Fixed(u64),
    /// Unknown duration with a guaranteed minimum; the actual value is only
    /// known at run time (cyberphysical control).
    Indeterminate {
        /// Minimum duration in time units.
        min: u64,
    },
}

impl Duration {
    /// Convenience constructor for [`Duration::Fixed`].
    pub fn fixed(minutes: u64) -> Self {
        Duration::Fixed(minutes)
    }

    /// Convenience constructor for [`Duration::Indeterminate`].
    pub fn at_least(minutes: u64) -> Self {
        Duration::Indeterminate { min: minutes }
    }

    /// The scheduling duration: the exact value, or the minimum for
    /// indeterminate operations (as used in eq. 14).
    pub fn min_duration(self) -> u64 {
        match self {
            Duration::Fixed(d) => d,
            Duration::Indeterminate { min } => min,
        }
    }

    /// Whether the duration is indeterminate.
    pub fn is_indeterminate(self) -> bool {
        matches!(self, Duration::Indeterminate { .. })
    }
}

impl std::fmt::Display for Duration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Duration::Fixed(d) => write!(f, "{d}m"),
            Duration::Indeterminate { min } => write!(f, ">={min}m"),
        }
    }
}

/// A biological operation described by the components it needs (§2.2):
/// container kind (optional), capacity class (optional), accessories, and a
/// duration. Dependencies live on the [`Assay`](crate::Assay), not here.
///
/// Built fluently:
///
/// ```
/// use mfhls_chip::{Accessory, Capacity, ContainerKind};
/// use mfhls_core::{Duration, Operation};
///
/// let capture = Operation::new("single-cell capture")
///     .capacity(Capacity::Small)
///     .accessory(Accessory::CellTrap)
///     .accessory(Accessory::OpticalSystem)
///     .with_duration(Duration::at_least(3));
/// assert!(capture.duration().is_indeterminate());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Operation {
    name: String,
    requirements: Requirements,
    duration: Duration,
}

impl Operation {
    /// Creates an operation with no component constraints and a zero fixed
    /// duration; refine with the builder methods.
    pub fn new(name: &str) -> Self {
        Operation {
            name: name.to_owned(),
            requirements: Requirements::default(),
            duration: Duration::Fixed(0),
        }
    }

    /// Requires a specific container kind.
    pub fn container(mut self, kind: ContainerKind) -> Self {
        self.requirements.container = Some(kind);
        self
    }

    /// Requires a specific capacity class.
    pub fn capacity(mut self, cap: Capacity) -> Self {
        self.requirements.capacity = Some(cap);
        self
    }

    /// Adds a required accessory.
    pub fn accessory(mut self, a: Accessory) -> Self {
        self.requirements.accessories.insert(a);
        self
    }

    /// Sets the execution duration.
    pub fn with_duration(mut self, d: Duration) -> Self {
        self.duration = d;
        self
    }

    /// Sets the full requirement record at once.
    pub fn requirements_from(mut self, req: Requirements) -> Self {
        self.requirements = req;
        self
    }

    /// The operation's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The component-oriented requirements.
    pub fn requirements(&self) -> &Requirements {
        &self.requirements
    }

    /// The declared duration.
    pub fn duration(&self) -> Duration {
        self.duration
    }

    /// Whether this operation's duration is indeterminate.
    pub fn is_indeterminate(&self) -> bool {
        self.duration.is_indeterminate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let op = Operation::new("wash")
            .container(ContainerKind::Chamber)
            .capacity(Capacity::Large)
            .accessory(Accessory::SieveValve)
            .with_duration(Duration::fixed(7));
        assert_eq!(op.name(), "wash");
        assert_eq!(op.requirements().container, Some(ContainerKind::Chamber));
        assert_eq!(op.requirements().capacity, Some(Capacity::Large));
        assert!(op
            .requirements()
            .accessories
            .contains(Accessory::SieveValve));
        assert_eq!(op.duration().min_duration(), 7);
        assert!(!op.is_indeterminate());
    }

    #[test]
    fn indeterminate_duration() {
        let d = Duration::at_least(5);
        assert!(d.is_indeterminate());
        assert_eq!(d.min_duration(), 5);
        assert_eq!(d.to_string(), ">=5m");
        assert_eq!(Duration::fixed(3).to_string(), "3m");
    }

    #[test]
    fn default_is_unconstrained() {
        let op = Operation::new("x");
        assert_eq!(op.requirements().container, None);
        assert_eq!(op.requirements().capacity, None);
        assert!(op.requirements().accessories.is_empty());
    }

    #[test]
    fn op_id_display() {
        assert_eq!(OpId(4).to_string(), "o4");
        assert_eq!(OpId(4).index(), 4);
    }
}
