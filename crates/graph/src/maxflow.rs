//! Edmonds–Karp maximum flow with minimum-cut extraction.
//!
//! The paper implements its layering eviction "based on the Ford–Fulkerson
//! algorithm" \[23\]; we use the Edmonds–Karp specialisation (BFS augmenting
//! paths) for its polynomial bound.

use crate::BitSet;

/// Capacity value treated as infinite. Large enough that no sum of real
/// capacities in this workspace can reach it.
pub const INF: u64 = u64::MAX / 4;

/// A flow network with mutable residual capacities.
///
/// # Example
///
/// ```
/// use mfhls_graph::maxflow::MaxFlow;
///
/// let mut net = MaxFlow::new(4);
/// net.add_edge(0, 1, 3);
/// net.add_edge(0, 2, 2);
/// net.add_edge(1, 3, 2);
/// net.add_edge(2, 3, 3);
/// assert_eq!(net.max_flow(0, 3), 4);
/// ```
#[derive(Debug, Clone)]
pub struct MaxFlow {
    // Edge list representation: edges stored in pairs (e, e^1) where e^1 is
    // the residual reverse edge.
    to: Vec<usize>,
    cap: Vec<u64>,
    head: Vec<Vec<usize>>, // per-node indices into `to`/`cap`
    n: usize,
}

/// Result of a minimum-cut computation.
#[derive(Debug, Clone)]
pub struct MinCut {
    /// Total capacity crossing the cut (equals the max-flow value).
    pub value: u64,
    /// Nodes on the source side (reachable in the final residual network).
    pub source_side: BitSet,
    /// Saturated original edges crossing from source side to sink side.
    pub cut_edges: Vec<(usize, usize)>,
}

impl MaxFlow {
    /// Creates an empty network on `n` nodes.
    pub fn new(n: usize) -> Self {
        MaxFlow {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
            n,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Adds a directed edge `u -> v` with capacity `cap` (plus the implicit
    /// zero-capacity residual edge).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: u64) {
        assert!(
            u < self.n && v < self.n,
            "edge ({u},{v}) out of range {}",
            self.n
        );
        let e = self.to.len();
        self.to.push(v);
        self.cap.push(cap);
        self.head[u].push(e);
        self.to.push(u);
        self.cap.push(0);
        self.head[v].push(e + 1);
    }

    /// Computes the maximum `s`→`t` flow, mutating residual capacities.
    ///
    /// Repeated calls continue from the current residual state, so call this
    /// once per freshly-built network.
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either is out of range.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        assert!(
            s < self.n && t < self.n && s != t,
            "invalid terminals {s},{t}"
        );
        let mut total = 0u64;
        loop {
            // BFS for shortest augmenting path; parent edge per node.
            let mut parent_edge = vec![usize::MAX; self.n];
            let mut visited = vec![false; self.n];
            visited[s] = true;
            let mut queue = std::collections::VecDeque::from([s]);
            'bfs: while let Some(u) = queue.pop_front() {
                for &e in &self.head[u] {
                    let v = self.to[e];
                    if !visited[v] && self.cap[e] > 0 {
                        visited[v] = true;
                        parent_edge[v] = e;
                        if v == t {
                            break 'bfs;
                        }
                        queue.push_back(v);
                    }
                }
            }
            if !visited[t] {
                return total;
            }
            // Bottleneck along the path.
            let mut bottleneck = u64::MAX;
            let mut v = t;
            while v != s {
                let e = parent_edge[v];
                bottleneck = bottleneck.min(self.cap[e]);
                v = self.to[e ^ 1];
            }
            // Apply.
            let mut v = t;
            while v != s {
                let e = parent_edge[v];
                self.cap[e] -= bottleneck;
                self.cap[e ^ 1] += bottleneck;
                v = self.to[e ^ 1];
            }
            total = total.saturating_add(bottleneck);
        }
    }

    /// Computes max-flow and extracts the canonical minimum cut whose source
    /// side is the set of nodes reachable from `s` in the residual network.
    ///
    /// Among all minimum cuts this is the one with the *smallest* source side
    /// — equivalently the *largest* sink side. The layering evictor wants the
    /// opposite (fewest moved vertices), so it runs the computation on the
    /// reversed network; see [`crate::closure_cut`].
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either is out of range.
    pub fn min_cut(mut self, s: usize, t: usize) -> MinCut {
        let value = self.max_flow(s, t);
        let mut source_side = BitSet::new(self.n);
        source_side.insert(s);
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &e in &self.head[u] {
                let v = self.to[e];
                if self.cap[e] > 0 && source_side.insert(v) {
                    queue.push_back(v);
                }
            }
        }
        // Original edges are even indices.
        let mut cut_edges = Vec::new();
        for u in source_side.iter() {
            for &e in &self.head[u] {
                if e % 2 == 0 {
                    let v = self.to[e];
                    if !source_side.contains(v) {
                        cut_edges.push((u, v));
                    }
                }
            }
        }
        MinCut {
            value,
            source_side,
            cut_edges,
        }
    }

    /// Like [`MaxFlow::min_cut`], but returns the minimum cut with the
    /// *largest* source side (fewest sink-side nodes): the sink side is the
    /// set of nodes that can still reach `t` in the residual network.
    ///
    /// The layering evictor uses this to honour the paper's tie-break of
    /// "fewer vertices on the sink side" (Fig. 5(d), cut `c2` over `c1`).
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either is out of range.
    pub fn min_cut_max_source(mut self, s: usize, t: usize) -> MinCut {
        let value = self.max_flow(s, t);
        // v is on the sink side iff v can reach t along positive residuals.
        // BFS backwards from t: for residual edge u -> v (cap > 0), if v is
        // sink-side then u is sink-side. Edge u -> v is stored at u; iterate
        // incoming by scanning the reverse pair: for each edge e at v with
        // to[e] = u, the paired edge e^1 runs u -> v, so u reaches v when
        // cap[e^1] > 0.
        let mut sink_side = BitSet::new(self.n);
        sink_side.insert(t);
        let mut queue = std::collections::VecDeque::from([t]);
        while let Some(v) = queue.pop_front() {
            for &e in &self.head[v] {
                let u = self.to[e];
                if self.cap[e ^ 1] > 0 && sink_side.insert(u) {
                    queue.push_back(u);
                }
            }
        }
        let mut source_side = BitSet::new(self.n);
        for u in 0..self.n {
            if !sink_side.contains(u) {
                source_side.insert(u);
            }
        }
        let mut cut_edges = Vec::new();
        for u in source_side.iter() {
            for &e in &self.head[u] {
                if e % 2 == 0 {
                    let v = self.to[e];
                    if sink_side.contains(v) {
                        cut_edges.push((u, v));
                    }
                }
            }
        }
        MinCut {
            value,
            source_side,
            cut_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_small_network() {
        // CLRS-style example.
        let mut net = MaxFlow::new(6);
        net.add_edge(0, 1, 16);
        net.add_edge(0, 2, 13);
        net.add_edge(1, 2, 10);
        net.add_edge(2, 1, 4);
        net.add_edge(1, 3, 12);
        net.add_edge(3, 2, 9);
        net.add_edge(2, 4, 14);
        net.add_edge(4, 3, 7);
        net.add_edge(3, 5, 20);
        net.add_edge(4, 5, 4);
        assert_eq!(net.max_flow(0, 5), 23);
    }

    #[test]
    fn disconnected_terminals_give_zero() {
        let mut net = MaxFlow::new(3);
        net.add_edge(0, 1, 5);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn single_edge() {
        let mut net = MaxFlow::new(2);
        net.add_edge(0, 1, 7);
        assert_eq!(net.max_flow(0, 1), 7);
    }

    #[test]
    fn min_cut_value_matches_flow() {
        let mut builder = MaxFlow::new(4);
        builder.add_edge(0, 1, 3);
        builder.add_edge(0, 2, 2);
        builder.add_edge(1, 3, 2);
        builder.add_edge(2, 3, 3);
        let cut = builder.min_cut(0, 3);
        assert_eq!(cut.value, 4);
        let edge_sum: u64 = cut.cut_edges.len() as u64; // all caps >= 1 here
        assert!(edge_sum >= 1);
        assert!(cut.source_side.contains(0));
        assert!(!cut.source_side.contains(3));
    }

    #[test]
    fn min_cut_separates_bottleneck() {
        // 0 -(10)-> 1 -(1)-> 2 -(10)-> 3: cut must be the middle edge.
        let mut net = MaxFlow::new(4);
        net.add_edge(0, 1, 10);
        net.add_edge(1, 2, 1);
        net.add_edge(2, 3, 10);
        let cut = net.min_cut(0, 3);
        assert_eq!(cut.value, 1);
        assert_eq!(cut.cut_edges, vec![(1, 2)]);
        assert_eq!(cut.source_side.iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn inf_edges_never_cut() {
        // 0 -(INF)-> 1 -(2)-> 3, 0 -(1)-> 2 -(INF)-> 3.
        let mut net = MaxFlow::new(4);
        net.add_edge(0, 1, INF);
        net.add_edge(1, 3, 2);
        net.add_edge(0, 2, 1);
        net.add_edge(2, 3, INF);
        let cut = net.min_cut(0, 3);
        assert_eq!(cut.value, 3);
        assert!(cut
            .cut_edges
            .iter()
            .all(|&(u, v)| (u, v) == (1, 3) || (u, v) == (0, 2)));
    }

    #[test]
    fn parallel_edges_add_up() {
        let mut net = MaxFlow::new(2);
        net.add_edge(0, 1, 2);
        net.add_edge(0, 1, 3);
        assert_eq!(net.max_flow(0, 1), 5);
    }

    /// Brute-force min cut by enumerating all source-side subsets.
    fn brute_force_min_cut(n: usize, edges: &[(usize, usize, u64)], s: usize, t: usize) -> u64 {
        let mut best = u64::MAX;
        for mask in 0u32..(1 << n) {
            if mask & (1 << s) == 0 || mask & (1 << t) != 0 {
                continue;
            }
            let cost: u64 = edges
                .iter()
                .filter(|&&(u, v, _)| mask & (1 << u) != 0 && mask & (1 << v) == 0)
                .map(|&(_, _, c)| c)
                .sum();
            best = best.min(cost);
        }
        best
    }

    #[test]
    fn randomised_against_brute_force() {
        let mut rng = crate::rng::SplitMix64::seed_from_u64(42);
        for _ in 0..200 {
            let n = rng.gen_index(2, 7);
            let m = rng.gen_index(0, 12);
            let edges: Vec<(usize, usize, u64)> = (0..m)
                .filter_map(|_| {
                    let u = rng.gen_index(0, n);
                    let v = rng.gen_index(0, n);
                    (u != v).then(|| (u, v, rng.gen_range_u64(1, 9)))
                })
                .collect();
            let (s, t) = (0, n - 1);
            if s == t {
                continue;
            }
            let mut net = MaxFlow::new(n);
            for &(u, v, c) in &edges {
                net.add_edge(u, v, c);
            }
            let flow = net.max_flow(s, t);
            let expect = brute_force_min_cut(n, &edges, s, t);
            assert_eq!(flow, expect, "edges={edges:?}");
        }
    }
}
