//! Post-synthesis schedule analysis: utilisation, parallelism, critical
//! paths, and storage demand.
//!
//! The paper's evaluation reports aggregate metrics (execution time,
//! device count, path count); chip designers additionally want to know
//! *why* a schedule looks the way it does — which devices idle, where the
//! makespan is pinned, and how much boundary storage the layering costs.
//! This module computes those diagnostics from a validated
//! [`HybridSchedule`].

use crate::{Assay, CoreError, HybridSchedule, OpId};
use std::collections::BTreeMap;

/// Per-device usage statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceUsage {
    /// Device index.
    pub device: usize,
    /// Number of operations bound to the device.
    pub ops: usize,
    /// Total busy time (operation durations + reserved transports).
    pub busy: u64,
    /// Utilisation = busy / total fixed schedule time, in `[0, 1]`.
    pub utilisation: f64,
}

/// Number of concurrently running operations over time within one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelismProfile {
    /// `(time, active-op-count)` change points, ascending in time.
    pub steps: Vec<(u64, usize)>,
    /// Peak concurrency.
    pub peak: usize,
    /// Time-weighted average concurrency.
    pub average_milli: u64,
}

/// Full analysis report.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleAnalysis {
    /// Fixed makespan (sum of layer makespans).
    pub fixed_makespan: u64,
    /// Usage per device, ascending by index.
    pub devices: Vec<DeviceUsage>,
    /// One critical path of operations (start-pinned chain), in execution
    /// order across layers.
    pub critical_path: Vec<OpId>,
    /// Parallelism profile per layer.
    pub parallelism: Vec<ParallelismProfile>,
    /// Storage demand at each layer boundary (cross-boundary outputs).
    pub boundary_storage: Vec<u64>,
}

/// Fallible analysis: audits that `assay` and `schedule` agree on the op
/// set before computing anything, so degenerate or mismatched inputs come
/// back as a [`CoreError::InvalidSchedule`] naming the offending op
/// instead of a panic (or, worse, a silently wrong report — the storage
/// accounting would quietly drop edges whose endpoints are unscheduled).
///
/// # Errors
///
/// Returns [`CoreError::InvalidSchedule`] if a slot references an op
/// foreign to `assay`, an op is scheduled in more than one layer, or an
/// op of `assay` is missing from `schedule`; the message names the op.
pub fn try_analyse(
    assay: &Assay,
    schedule: &HybridSchedule,
) -> Result<ScheduleAnalysis, CoreError> {
    let mut seen = vec![false; assay.len()];
    for layer in &schedule.layers {
        for slot in &layer.ops {
            let i = slot.op.index();
            if i >= assay.len() {
                return Err(CoreError::InvalidSchedule(format!(
                    "analysis: slot references foreign op {} ({} ops in assay)",
                    slot.op,
                    assay.len()
                )));
            }
            if seen[i] {
                return Err(CoreError::InvalidSchedule(format!(
                    "analysis: {} ('{}') is scheduled in more than one layer",
                    slot.op,
                    assay.op(slot.op).name()
                )));
            }
            seen[i] = true;
        }
    }
    if let Some(i) = seen.iter().position(|&s| !s) {
        let id = OpId(i);
        return Err(CoreError::InvalidSchedule(format!(
            "analysis: {id} ('{}') is not scheduled in any layer",
            assay.op(id).name()
        )));
    }
    Ok(analyse_audited(assay, schedule))
}

/// Analyses a schedule. The schedule should pass
/// [`HybridSchedule::validate`] first; analysis of an invalid schedule is
/// not meaningful. Prefer [`try_analyse`] when the schedule comes from an
/// untrusted source.
///
/// # Panics
///
/// Panics if `assay` and `schedule` disagree on the op set (see
/// [`try_analyse`]); the panic message names the offending op.
///
/// # Example
///
/// ```
/// use mfhls_core::{analysis, Assay, Duration, Operation, SynthConfig, Synthesizer};
///
/// let mut assay = Assay::new("demo");
/// let a = assay.add_op(Operation::new("a").with_duration(Duration::fixed(6)));
/// let b = assay.add_op(Operation::new("b").with_duration(Duration::fixed(4)));
/// assay.add_dependency(a, b)?;
/// let result = Synthesizer::new(SynthConfig::default()).run(&assay)?;
/// let report = analysis::analyse(&assay, &result.schedule);
/// assert_eq!(report.critical_path.len(), 2); // the whole chain is critical
/// assert!(report.devices.iter().all(|d| d.utilisation <= 1.0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn analyse(assay: &Assay, schedule: &HybridSchedule) -> ScheduleAnalysis {
    match try_analyse(assay, schedule) {
        Ok(report) => report,
        Err(e) => panic!("{e}"),
    }
}

fn analyse_audited(assay: &Assay, schedule: &HybridSchedule) -> ScheduleAnalysis {
    let fixed_makespan: u64 = schedule.layers.iter().map(|l| l.makespan()).sum();

    // Device usage across all layers.
    let mut usage: BTreeMap<usize, (usize, u64)> = BTreeMap::new();
    for layer in &schedule.layers {
        for slot in &layer.ops {
            let e = usage.entry(slot.device).or_insert((0, 0));
            e.0 += 1;
            e.1 += slot.duration + slot.transport;
        }
    }
    let devices = usage
        .into_iter()
        .map(|(device, (ops, busy))| DeviceUsage {
            device,
            ops,
            busy,
            utilisation: if fixed_makespan == 0 {
                0.0
            } else {
                busy as f64 / fixed_makespan as f64
            },
        })
        .collect();

    ScheduleAnalysis {
        fixed_makespan,
        devices,
        critical_path: critical_path(assay, schedule),
        parallelism: schedule
            .layers
            .iter()
            .map(|l| {
                profile(
                    l.ops
                        .iter()
                        .map(|s| (s.start, s.finish()))
                        .collect::<Vec<_>>(),
                )
            })
            .collect(),
        boundary_storage: boundary_storage(assay, schedule),
    }
}

/// Walks back from the operation that pins the makespan of each layer:
/// repeatedly hop to the predecessor that pinned this op's start (the
/// same-layer parent or same-device slot finishing exactly at our start),
/// producing one critical chain per schedule.
fn critical_path(assay: &Assay, schedule: &HybridSchedule) -> Vec<OpId> {
    let mut chain = Vec::new();
    for layer in &schedule.layers {
        let Some(last) = layer.ops.iter().max_by_key(|s| (s.finish(), s.op)) else {
            continue;
        };
        let mut segment = vec![last.op];
        let mut cursor = *last;
        loop {
            if cursor.start == 0 {
                break;
            }
            // A same-layer parent whose release pins our start?
            let pin_parent = assay
                .parents(cursor.op)
                .into_iter()
                .filter_map(|p| layer.slot(p))
                .find(|ps| ps.start + ps.duration + ps.transport == cursor.start);
            // Or a same-device predecessor releasing exactly at our start?
            let pin_device = layer
                .ops
                .iter()
                .find(|s| s.device == cursor.device && s.release_time() == cursor.start);
            match pin_parent.or(pin_device) {
                Some(prev) => {
                    segment.push(prev.op);
                    cursor = *prev;
                }
                None => break, // pinned by eq. 14 alignment or a gap
            }
        }
        segment.reverse();
        chain.extend(segment);
    }
    chain
}

fn profile(intervals: Vec<(u64, u64)>) -> ParallelismProfile {
    let mut deltas: BTreeMap<u64, i64> = BTreeMap::new();
    for &(s, e) in &intervals {
        *deltas.entry(s).or_insert(0) += 1;
        *deltas.entry(e).or_insert(0) -= 1;
    }
    let mut steps = Vec::new();
    let mut active = 0i64;
    let mut peak = 0usize;
    let mut weighted = 0u64;
    let mut last_t = None::<u64>;
    for (&t, &d) in &deltas {
        if let Some(lt) = last_t {
            weighted += active as u64 * (t - lt);
        }
        active += d;
        peak = peak.max(active as usize);
        steps.push((t, active as usize));
        last_t = Some(t);
    }
    let span = match (steps.first(), steps.last()) {
        (Some(&(a, _)), Some(&(b, _))) if b > a => b - a,
        _ => 0,
    };
    ParallelismProfile {
        steps,
        peak,
        average_milli: (weighted * 1000).checked_div(span).unwrap_or(0),
    }
}

/// Outputs that must be stored across each layer boundary: dependency
/// edges whose parent runs in layer `<= i` and whose child runs in layer
/// `> i` (one stored output per edge).
///
/// Edges with an unscheduled endpoint are skipped; call [`try_analyse`]
/// (which audits coverage first) if that would silently understate the
/// demand for your input.
pub fn boundary_storage(assay: &Assay, schedule: &HybridSchedule) -> Vec<u64> {
    let mut layer_of: BTreeMap<OpId, usize> = BTreeMap::new();
    for (li, layer) in schedule.layers.iter().enumerate() {
        for slot in &layer.ops {
            layer_of.insert(slot.op, li);
        }
    }
    let bounds = schedule.layers.len().saturating_sub(1);
    let mut storage = vec![0u64; bounds];
    for (p, c) in assay.dependencies() {
        let (Some(&lp), Some(&lc)) = (layer_of.get(&p), layer_of.get(&c)) else {
            continue;
        };
        for s in storage.iter_mut().take(lc).skip(lp) {
            *s += 1;
        }
    }
    storage
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Duration, LayerSchedule, Operation, ScheduledOp, SynthConfig, Synthesizer};
    use mfhls_chip::{AccessorySet, Capacity, ContainerKind, DeviceConfig};

    fn chamber() -> DeviceConfig {
        DeviceConfig::new(
            ContainerKind::Chamber,
            Capacity::Small,
            AccessorySet::empty(),
        )
        .unwrap()
    }

    #[test]
    fn utilisation_of_serial_chain_is_full_on_one_device() {
        let mut a = Assay::new("t");
        let x = a.add_op(Operation::new("x").with_duration(Duration::fixed(4)));
        let y = a.add_op(Operation::new("y").with_duration(Duration::fixed(6)));
        a.add_dependency(x, y).unwrap();
        let schedule = HybridSchedule {
            layers: vec![LayerSchedule::new(vec![
                ScheduledOp {
                    op: x,
                    device: 0,
                    start: 0,
                    duration: 4,
                    transport: 0,
                },
                ScheduledOp {
                    op: y,
                    device: 0,
                    start: 4,
                    duration: 6,
                    transport: 0,
                },
            ])],
            devices: vec![chamber()],
            paths: Default::default(),
        };
        let r = analyse(&a, &schedule);
        assert_eq!(r.fixed_makespan, 10);
        assert_eq!(r.devices.len(), 1);
        assert_eq!(r.devices[0].busy, 10);
        assert!((r.devices[0].utilisation - 1.0).abs() < 1e-9);
        // Whole chain is critical.
        assert_eq!(r.critical_path, vec![x, y]);
    }

    #[test]
    fn parallelism_profile_counts_overlap() {
        let p = profile(vec![(0, 4), (2, 6), (4, 8)]);
        assert_eq!(p.peak, 2);
        // t in [0,2): 1 active; [2,4): 2; [4,6): 2; [6,8): 1.
        // average = (2 + 4 + 4 + 2) / 8 = 1.5
        assert_eq!(p.average_milli, 1500);
    }

    #[test]
    fn empty_profile() {
        let p = profile(vec![]);
        assert_eq!(p.peak, 0);
        assert_eq!(p.average_milli, 0);
        assert!(p.steps.is_empty());
    }

    #[test]
    fn storage_matches_layering_accounting() {
        let assay = {
            let mut a = Assay::new("t");
            let prep = a.add_op(Operation::new("p").with_duration(Duration::fixed(2)));
            let cap = a.add_op(Operation::new("c").with_duration(Duration::at_least(3)));
            let post = a.add_op(Operation::new("q").with_duration(Duration::fixed(2)));
            a.add_dependency(prep, cap).unwrap();
            a.add_dependency(cap, post).unwrap();
            a
        };
        let r = Synthesizer::new(SynthConfig::default())
            .run(&assay)
            .unwrap();
        let analysis = analyse(&assay, &r.schedule);
        assert_eq!(
            analysis.boundary_storage,
            r.layering.boundary_storage(&assay)
        );
    }

    #[test]
    fn try_analyse_names_the_offending_op() {
        let mut a = Assay::new("t");
        let x = a.add_op(Operation::new("lyse").with_duration(Duration::fixed(4)));
        let y = a.add_op(Operation::new("wash").with_duration(Duration::fixed(2)));
        a.add_dependency(x, y).unwrap();
        let slot = |op, start| ScheduledOp {
            op,
            device: 0,
            start,
            duration: if op == x { 4 } else { 2 },
            transport: 0,
        };

        // Missing op: `wash` never scheduled.
        let missing = HybridSchedule {
            layers: vec![LayerSchedule::new(vec![slot(x, 0)])],
            devices: vec![chamber()],
            paths: Default::default(),
        };
        let e = try_analyse(&a, &missing).unwrap_err().to_string();
        assert!(e.contains("o1") && e.contains("wash"), "{e}");

        // Duplicate: `lyse` in two layers.
        let duplicated = HybridSchedule {
            layers: vec![
                LayerSchedule::new(vec![slot(x, 0), slot(y, 4)]),
                LayerSchedule::new(vec![slot(x, 0)]),
            ],
            devices: vec![chamber()],
            paths: Default::default(),
        };
        let e = try_analyse(&a, &duplicated).unwrap_err().to_string();
        assert!(e.contains("o0") && e.contains("more than one layer"), "{e}");

        // Foreign slot: op id beyond the assay.
        let foreign = HybridSchedule {
            layers: vec![LayerSchedule::new(vec![
                slot(x, 0),
                slot(y, 4),
                ScheduledOp {
                    op: OpId(7),
                    device: 0,
                    start: 6,
                    duration: 1,
                    transport: 0,
                },
            ])],
            devices: vec![chamber()],
            paths: Default::default(),
        };
        let e = try_analyse(&a, &foreign).unwrap_err().to_string();
        assert!(e.contains("foreign op o7"), "{e}");

        // And the happy path agrees with the panicking front door.
        let good = HybridSchedule {
            layers: vec![LayerSchedule::new(vec![slot(x, 0), slot(y, 4)])],
            devices: vec![chamber()],
            paths: Default::default(),
        };
        assert_eq!(try_analyse(&a, &good).unwrap(), analyse(&a, &good));
    }

    #[test]
    fn benchmark_analysis_is_consistent() {
        let assay = mfhls_test_assay();
        let r = Synthesizer::new(SynthConfig::default())
            .run(&assay)
            .unwrap();
        let a = analyse(&assay, &r.schedule);
        assert_eq!(a.fixed_makespan, r.schedule.exec_time(&assay).fixed);
        // Total busy time never exceeds devices * makespan.
        let total_busy: u64 = a.devices.iter().map(|d| d.busy).sum();
        assert!(total_busy <= a.fixed_makespan * a.devices.len() as u64);
        // Critical path ops are unique and scheduled.
        let mut seen = std::collections::BTreeSet::new();
        for &op in &a.critical_path {
            assert!(seen.insert(op), "critical path revisits {op}");
            assert!(r.schedule.slot(op).is_some());
        }
        // Peak parallelism never exceeds the device count.
        for p in &a.parallelism {
            assert!(p.peak <= r.schedule.devices.len());
        }
    }

    fn mfhls_test_assay() -> Assay {
        let mut a = Assay::new("bench-ish");
        let mut prev: Option<OpId> = None;
        for k in 0..12 {
            let op = a.add_op(
                Operation::new(&format!("op{k}")).with_duration(if k % 5 == 4 {
                    Duration::at_least(3)
                } else {
                    Duration::fixed(2 + (k % 4) as u64)
                }),
            );
            if let Some(p) = prev {
                if k % 3 != 0 {
                    a.add_dependency(p, op).unwrap();
                }
            }
            prev = Some(op);
        }
        a
    }
}
