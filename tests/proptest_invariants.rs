//! Randomized invariant tests over generated assays: every layering,
//! schedule, simulation, and DSL round-trip invariant must hold for
//! arbitrary DAGs, not just the benchmark protocols. Driven by the
//! vendored seeded PRNG (the workspace builds offline, so no proptest);
//! failures print the seed for replay.

use mfhls::assays::{random_assay, RandomAssayParams};
use mfhls::graph::rng::SplitMix64;
use mfhls::sim::{simulate_hybrid, SimConfig};
use mfhls::{layer_assay, SynthConfig, Synthesizer};

const CASES: u64 = 48;

/// Derives `(assay seed, params)` for one randomized case.
fn random_case(case: u64, tag: u64) -> (u64, RandomAssayParams) {
    let mut rng = SplitMix64::seed_from_u64(case ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let seed = rng.gen_range_u64(0, 9_999);
    let params = RandomAssayParams {
        ops: rng.gen_index(2, 28),
        edge_probability: rng.gen_range_f64(0.02, 0.3),
        indeterminate_fraction: rng.gen_range_f64(0.0, 0.4),
        max_duration: rng.gen_range_u64(2, 39),
    };
    (seed, params)
}

/// Algorithm 1 output always satisfies its structural invariants.
#[test]
fn layering_invariants() {
    for case in 0..CASES {
        let (seed, params) = random_case(case, 1);
        let mut rng = SplitMix64::seed_from_u64(case);
        let threshold = rng.gen_index(1, 12);
        let assay = random_assay(seed, params);
        let layering = layer_assay(&assay, threshold).expect("layering never fails on a DAG");
        layering.validate(&assay, threshold).expect("invariants");
        // Boundary storage is consistent with cross-layer edges.
        let total_cross: u64 = assay
            .dependencies()
            .filter(|(p, c)| layering.layer_of(*p) != layering.layer_of(*c))
            .count() as u64;
        let storage = layering.boundary_storage(&assay);
        assert!(
            storage.iter().sum::<u64>() >= total_cross,
            "case {case}: storage {storage:?} vs {total_cross} crossing edges"
        );
    }
}

/// Synthesized schedules always pass the full paper-constraint validator,
/// for both binding modes.
#[test]
fn schedules_validate() {
    for case in 0..CASES {
        let (seed, params) = random_case(case, 2);
        let assay = random_assay(seed, params);
        let ours = Synthesizer::new(SynthConfig::default())
            .run(&assay)
            .expect("synthesizable");
        ours.schedule.validate(&assay).expect("ours valid");
        let conv =
            mfhls::core::conventional::run(&assay, SynthConfig::default()).expect("synthesizable");
        conv.schedule.validate(&assay).expect("conv valid");
        // Resource budget respected by construction.
        assert!(ours.schedule.used_device_count() <= 25, "case {case}");
    }
}

/// Synthesis is deterministic: same input, same output.
#[test]
fn synthesis_is_deterministic() {
    for case in 0..CASES {
        let (seed, _) = random_case(case, 3);
        let assay = random_assay(seed, RandomAssayParams::default());
        let a = Synthesizer::new(SynthConfig::default())
            .run(&assay)
            .expect("ok");
        let b = Synthesizer::new(SynthConfig::default())
            .run(&assay)
            .expect("ok");
        assert_eq!(a.schedule, b.schedule, "case {case}");
    }
}

/// Executing a valid schedule never errors and never undercuts the fixed
/// accounting.
#[test]
fn simulation_respects_fixed_bound() {
    for case in 0..CASES {
        let (seed, _) = random_case(case, 4);
        let mut rng = SplitMix64::seed_from_u64(case);
        let sim_seed = rng.gen_range_u64(0, 49);
        let assay = random_assay(seed % 5_000, RandomAssayParams::default());
        let r = Synthesizer::new(SynthConfig::default())
            .run(&assay)
            .expect("ok");
        let run = simulate_hybrid(
            &assay,
            &r.schedule,
            &SimConfig {
                seed: sim_seed,
                ..SimConfig::default()
            },
        )
        .expect("no runtime conflicts");
        assert!(
            run.makespan >= r.schedule.exec_time(&assay).fixed,
            "case {case}"
        );
        assert_eq!(run.events.len(), assay.len(), "case {case}");
    }
}

/// DSL print -> parse is the identity on structure.
#[test]
fn dsl_round_trip() {
    for case in 0..CASES {
        let (seed, params) = random_case(case, 5);
        let assay = random_assay(seed, params);
        let text = mfhls::dsl::to_text(&assay);
        let back = mfhls::dsl::parse(&text).expect("printer output parses");
        assert_eq!(assay.len(), back.len(), "case {case}");
        // Edge *sets* must match; the printer groups edges by child, so
        // the order may differ from the original insertion order.
        let mut original: Vec<_> = assay.dependencies().collect();
        let mut round_tripped: Vec<_> = back.dependencies().collect();
        original.sort_unstable();
        round_tripped.sort_unstable();
        assert_eq!(original, round_tripped, "case {case}");
        for (id, op) in assay.iter() {
            assert_eq!(op.requirements(), back.op(id).requirements(), "case {case}");
            assert_eq!(op.duration(), back.op(id).duration(), "case {case}");
        }
    }
}

/// Progressive re-synthesis never returns a schedule worse than the first
/// iteration.
#[test]
fn resynthesis_never_regresses() {
    for case in 0..CASES {
        let (seed, _) = random_case(case, 6);
        let assay = random_assay(
            seed % 5_000,
            RandomAssayParams {
                ops: 16,
                indeterminate_fraction: 0.2,
                ..RandomAssayParams::default()
            },
        );
        let r = Synthesizer::new(SynthConfig::default())
            .run(&assay)
            .expect("ok");
        let best = r.schedule.exec_time(&assay).fixed;
        assert!(best <= r.iterations[0].exec_time.fixed, "case {case}");
    }
}

/// Analysis invariants: critical-path ops exist and are unique, device
/// utilisation is within [0, 1], peak parallelism never exceeds the
/// device count, and total busy time fits devices x makespan.
#[test]
fn analysis_invariants() {
    for case in 0..CASES {
        use mfhls::core::analysis;
        let (seed, params) = random_case(case, 7);
        let assay = random_assay(seed, params);
        let r = Synthesizer::new(SynthConfig::default())
            .run(&assay)
            .expect("ok");
        let report = analysis::analyse(&assay, &r.schedule);
        assert_eq!(
            report.fixed_makespan,
            r.schedule.exec_time(&assay).fixed,
            "case {case}"
        );
        let mut seen = std::collections::BTreeSet::new();
        for &op in &report.critical_path {
            assert!(seen.insert(op), "case {case}: critical path revisits {op}");
            assert!(r.schedule.slot(op).is_some(), "case {case}");
        }
        let mut busy_total = 0u64;
        for d in &report.devices {
            assert!(
                d.utilisation >= 0.0 && d.utilisation <= 1.0 + 1e-9,
                "case {case}"
            );
            busy_total += d.busy;
        }
        assert!(
            busy_total <= report.fixed_makespan * r.schedule.devices.len().max(1) as u64,
            "case {case}"
        );
        for p in &report.parallelism {
            assert!(p.peak <= r.schedule.devices.len(), "case {case}");
        }
        assert_eq!(
            report.boundary_storage,
            r.layering.boundary_storage(&assay),
            "case {case}"
        );
    }
}

/// The floorplan report's arithmetic is internally consistent for any
/// synthesized chip.
#[test]
fn floorplan_consistency() {
    for case in 0..CASES {
        use mfhls::chip::{control::ControlModel, floorplan, CostModel};
        let (seed, _) = random_case(case, 8);
        let assay = random_assay(seed, RandomAssayParams::default());
        let r = Synthesizer::new(SynthConfig::default())
            .run(&assay)
            .expect("ok");
        let netlist = r.schedule.to_netlist(&assay);
        let spec = floorplan::ChipSpec::default();
        let report = floorplan::check(
            &netlist,
            &spec,
            &CostModel::default(),
            &ControlModel::default(),
        );
        assert!(report.total_area >= report.device_area, "case {case}");
        assert_eq!(
            report.fits,
            report.total_area <= spec.max_area && report.control.total_ports() <= spec.max_ports,
            "case {case}"
        );
        // Shared pump drive never needs more ports than individual drive.
        let individual = floorplan::check(
            &netlist,
            &floorplan::ChipSpec {
                shared_pump_drive: false,
                ..spec
            },
            &CostModel::default(),
            &ControlModel::default(),
        );
        assert!(
            report.control.control_ports <= individual.control.control_ports,
            "case {case}"
        );
    }
}

/// CSV exports stay rectangular: every row has the header's column count,
/// one row per operation.
#[test]
fn csv_export_is_rectangular() {
    for case in 0..CASES {
        use mfhls::core::export;
        let (seed, _) = random_case(case, 9);
        let assay = random_assay(seed, RandomAssayParams::default());
        let r = Synthesizer::new(SynthConfig::default())
            .run(&assay)
            .expect("ok");
        // Quote-aware column counter (quoted fields may contain commas,
        // e.g. accessory sets).
        fn cols(line: &str) -> usize {
            let mut n = 1;
            let mut in_quotes = false;
            for c in line.chars() {
                match c {
                    '"' => in_quotes = !in_quotes,
                    ',' if !in_quotes => n += 1,
                    _ => {}
                }
            }
            n
        }
        for csv in [
            export::schedule_csv(&assay, &r.schedule),
            export::assay_csv(&assay),
        ] {
            let mut lines = csv.lines();
            let header_cols = cols(lines.next().expect("header"));
            let mut rows = 0;
            for line in lines {
                rows += 1;
                assert_eq!(cols(line), header_cols, "case {case}: line {line}");
            }
            assert_eq!(rows, assay.len(), "case {case}");
        }
    }
}

/// Gantt rendering never panics and mentions every device lane.
#[test]
fn gantt_renders_any_schedule() {
    for case in 0..CASES {
        use mfhls::core::render;
        let (seed, _) = random_case(case, 10);
        let mut rng = SplitMix64::seed_from_u64(case);
        let width = rng.gen_index(1, 200);
        let assay = random_assay(seed, RandomAssayParams::default());
        let r = Synthesizer::new(SynthConfig::default())
            .run(&assay)
            .expect("ok");
        let chart = render::gantt(&assay, &r.schedule, width);
        for layer in &r.schedule.layers {
            for slot in &layer.ops {
                let lane = format!("d{}", slot.device);
                assert!(chart.contains(&lane), "case {case}: missing lane {lane}");
            }
        }
    }
}

/// The transport estimates after refinement stay within the user-declared
/// progression.
#[test]
fn transport_refinement_bounded() {
    for case in 0..CASES {
        use mfhls::core::{TransportConfig, TransportTimes};
        let (seed, _) = random_case(case, 11);
        let assay = random_assay(seed, RandomAssayParams::default());
        let r = Synthesizer::new(SynthConfig::default())
            .run(&assay)
            .expect("ok");
        let cfg = TransportConfig::default();
        let refined = TransportTimes::refined(&assay, &cfg, &r.schedule.device_of(&assay));
        for op in assay.op_ids() {
            let t = refined.of(op);
            assert!(
                t == 0 || (cfg.progression.min..=cfg.progression.max).contains(&t),
                "case {case}"
            );
        }
    }
}
