//! Criterion micro-benches for the substrates: max-flow/min-cut, the
//! layering algorithm, the simplex LP core, the exact MILP solver, and one
//! heuristic layer solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mfhls_graph::maxflow::MaxFlow;
use mfhls_ilp::{Model, Sense, SolverConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn maxflow_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxflow");
    for &n in &[20usize, 60, 120] {
        // Layered random network.
        let mut rng = StdRng::seed_from_u64(n as u64);
        let edges: Vec<(usize, usize, u64)> = (0..n * 4)
            .map(|_| {
                let u = rng.gen_range(0..n - 1);
                let v = rng.gen_range(u + 1..n);
                (u, v, rng.gen_range(1..20))
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &edges, |b, edges| {
            b.iter(|| {
                let mut net = MaxFlow::new(n);
                for &(u, v, cap) in edges {
                    net.add_edge(u, v, cap);
                }
                net.max_flow(0, n - 1)
            });
        });
    }
    group.finish();
}

fn layering_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("layering");
    for (case, _, assay) in mfhls_assays::benchmarks() {
        group.bench_with_input(BenchmarkId::from_parameter(case), &assay, |b, assay| {
            b.iter(|| mfhls_core::layer_assay(assay, 10).expect("layers"));
        });
    }
    group.finish();
}

fn simplex_bench(c: &mut Criterion) {
    use mfhls_ilp::simplex::{solve_lp, LpProblem, LpRow};
    let mut group = c.benchmark_group("simplex");
    for &n in &[10usize, 30, 60] {
        let mut rng = StdRng::seed_from_u64(7);
        let rows: Vec<LpRow> = (0..n)
            .map(|_| LpRow {
                coeffs: (0..n).map(|j| (j, rng.gen_range(-3..4) as f64)).collect(),
                sense: Sense::Le,
                rhs: rng.gen_range(5..50) as f64,
            })
            .collect();
        let p = LpProblem {
            ncols: n,
            rows,
            objective: (0..n).map(|_| rng.gen_range(-3..0) as f64).collect(),
            lb: vec![0.0; n],
            ub: vec![10.0; n],
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| solve_lp(p).expect("solvable"));
        });
    }
    group.finish();
}

fn milp_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("milp_knapsack");
    group.sample_size(20);
    for &n in &[8usize, 14] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut m = Model::minimize();
                let items: Vec<_> = (0..n).map(|k| m.binary(&format!("x{k}"))).collect();
                let weights: Vec<f64> = (0..n).map(|k| (k % 7 + 2) as f64).collect();
                let values: Vec<f64> = (0..n).map(|k| (k % 5 + 1) as f64).collect();
                m.add_con(
                    mfhls_ilp::LinExpr::weighted_sum(
                        items.iter().zip(&weights).map(|(&v, &w)| (v, w)),
                    ),
                    Sense::Le,
                    (n as f64) * 2.0,
                );
                m.set_objective(-mfhls_ilp::LinExpr::weighted_sum(
                    items.iter().zip(&values).map(|(&v, &w)| (v, w)),
                ));
                mfhls_ilp::solve(&m, &SolverConfig::default()).expect("feasible")
            });
        });
    }
    group.finish();
}

fn heuristic_layer_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristic_layer");
    group.sample_size(20);
    let assay = mfhls_assays::rtqpcr(20);
    group.bench_function("rtqpcr_single_pass", |b| {
        b.iter(|| {
            mfhls_bench::run_ours(
                &assay,
                mfhls_core::SynthConfig {
                    max_iterations: 1,
                    ..mfhls_core::SynthConfig::default()
                },
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    maxflow_bench,
    layering_bench,
    simplex_bench,
    milp_bench,
    heuristic_layer_bench
);
criterion_main!(benches);
