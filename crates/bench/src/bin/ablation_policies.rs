//! Ablation B: hybrid scheduling vs fully-offline (padded) vs fully-online
//! control, under stochastic indeterminate durations (geometric capture
//! retries, p = 0.53 per attempt, as in \[11\]).
//!
//! ```text
//! cargo run --release -p mfhls-bench --bin ablation_policies
//! ```
//!
//! Expectation (the paper's §1 argument):
//! * *offline with padding* commits to a long fixed makespan and still
//!   fails whenever one capture outruns its padding;
//! * *fully online* tracks reality but pays a decision latency on every
//!   operation (manual observation!), which dominates for large assays;
//! * *hybrid* keeps realized makespans near the online optimum with only
//!   one decision per layer boundary.

use mfhls_bench::print_table;
use mfhls_core::{SynthConfig, Synthesizer};
use mfhls_sim::{
    pad_indeterminate, simulate_hybrid, simulate_online, simulate_padded, DurationModel, SimConfig,
};

const TRIALS: u64 = 200;
const PAD: f64 = 3.0;
const DECISION_LATENCY: u64 = 2;

fn main() {
    println!(
        "Ablation B: control policies ({TRIALS} trials, geometric retries p=0.53,\n\
         offline padding x{PAD}, online decision latency {DECISION_LATENCY}m serialised)\n"
    );
    let model = DurationModel::GeometricRetry {
        success_probability: 0.53,
        max_attempts: 20,
    };
    for (case, tag, assay) in mfhls_assays::benchmarks() {
        if assay.indeterminate_ops().is_empty() {
            continue;
        }
        let hybrid = Synthesizer::new(SynthConfig::default())
            .run(&assay)
            .expect("synthesizable");

        let mut hybrid_spans = Vec::new();
        let mut hybrid_decisions = 0;
        for seed in 0..TRIALS {
            let run = simulate_hybrid(&assay, &hybrid.schedule, &SimConfig { model, seed })
                .expect("valid schedule");
            hybrid_decisions = run.decisions;
            hybrid_spans.push(run.makespan);
        }

        let padded_assay = pad_indeterminate(&assay, PAD);
        let offline = Synthesizer::new(SynthConfig::default())
            .run(&padded_assay)
            .expect("synthesizable");
        let offline_fixed = offline.schedule.exec_time(&padded_assay).fixed;
        let failures = (0..TRIALS)
            .filter(|&seed| {
                !simulate_padded(&assay, offline_fixed, PAD, &SimConfig { model, seed }).success
            })
            .count();

        let mut online_spans = Vec::new();
        let mut online_decisions = 0;
        for seed in 0..TRIALS {
            let run = simulate_online(
                &assay,
                &hybrid.schedule,
                &SimConfig { model, seed },
                DECISION_LATENCY,
                true,
            )
            .expect("valid binding");
            online_decisions = run.decisions;
            online_spans.push(run.makespan);
        }

        println!("case {case} {tag} ({} ops):", assay.len());
        let stats = |v: &mut Vec<u64>| {
            v.sort_unstable();
            (v[0], v[v.len() / 2], v[v.len() - 1])
        };
        let (hl, hm, hh) = stats(&mut hybrid_spans);
        let (ol, om, oh) = stats(&mut online_spans);
        print_table(
            &[
                "policy",
                "makespan min/med/max",
                "decisions",
                "failure rate",
            ],
            &[
                vec![
                    "hybrid (paper)".into(),
                    format!("{hl} / {hm} / {hh} m"),
                    hybrid_decisions.to_string(),
                    "0%".into(),
                ],
                vec![
                    format!("offline pad x{PAD}"),
                    format!("{offline_fixed} m fixed"),
                    "0".into(),
                    format!("{:.1}%", failures as f64 / TRIALS as f64 * 100.0),
                ],
                vec![
                    "fully online".into(),
                    format!("{ol} / {om} / {oh} m"),
                    online_decisions.to_string(),
                    "0%".into(),
                ],
            ],
        );
        println!();
    }
}
