//! A minimal little-endian byte codec for the `mfhls-store/v1` payload.
//!
//! Fixed-width little-endian integers, length-prefixed byte strings, no
//! varints, no reflection: the format is boring on purpose. Decoding is
//! defensive — every length is bounds-checked against both the remaining
//! input and a sanity cap, so a corrupt record that somehow passes the
//! checksum still cannot drive an allocation or a panic.

/// Decode failure (the reader ran dry or a length was implausible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError;

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("payload does not decode as an mfhls-store/v1 record")
    }
}

impl std::error::Error for DecodeError {}

/// Sanity cap on any single decoded collection length. Far above anything
/// a real layer produces, far below anything that could hurt.
const MAX_LEN: u64 = 1 << 22;

/// Append-only byte writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a 32-bit little-endian integer.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a 64-bit little-endian integer.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a 64-bit little-endian integer.
    pub fn size(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.size(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Bounds-checked byte reader over an encoded payload.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed (decoders should end here).
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError)?;
        if end > self.buf.len() {
            return Err(DecodeError);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a 32-bit little-endian integer.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a 64-bit little-endian integer.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `usize` previously written by [`ByteWriter::size`],
    /// rejecting values over the sanity cap.
    pub fn size(&mut self) -> Result<usize, DecodeError> {
        let v = self.u64()?;
        if v > MAX_LEN {
            return Err(DecodeError);
        }
        usize::try_from(v).map_err(|_| DecodeError)
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.size()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| DecodeError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.size(12345);
        w.str("hello κόσμε");
        w.bytes(&[1, 2, 3]);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8(), Ok(7));
        assert_eq!(r.u32(), Ok(0xDEAD_BEEF));
        assert_eq!(r.u64(), Ok(u64::MAX));
        assert_eq!(r.size(), Ok(12345));
        assert_eq!(r.str(), Ok("hello κόσμε"));
        assert_eq!(r.bytes(), Ok(&[1u8, 2, 3][..]));
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_and_oversized_inputs_are_errors_not_panics() {
        let mut w = ByteWriter::new();
        w.str("payload");
        let buf = w.finish();
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            assert!(r.str().is_err(), "cut at {cut} must fail");
        }
        // A length far past the sanity cap is rejected before allocating.
        let mut w = ByteWriter::new();
        w.u64(u64::MAX / 2);
        let buf = w.finish();
        assert_eq!(ByteReader::new(&buf).size(), Err(DecodeError));
    }
}
