//! Benchmark case 1: the kinase activity radioassay, highlighting
//! component-oriented device sharing, the flow-channel netlist, and the
//! potential-layout estimate (written out as SVG).
//!
//! Run with: `cargo run --release --example kinase_assay`

use mfhls::chip::layout;
use mfhls::core::conventional;
use mfhls::{SynthConfig, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let assay = mfhls::assays::kinase_activity(2);
    println!(
        "assay: {} — {} ops (all determinate)",
        assay.name(),
        assay.len()
    );

    let ours = Synthesizer::new(SynthConfig::default()).run(&assay)?;
    let conv = conventional::run(&assay, SynthConfig::default())?;

    println!(
        "\ncomponent-oriented: exec {}  devices {}  paths {}",
        ours.schedule.exec_time(&assay),
        ours.schedule.used_device_count(),
        ours.schedule.path_count()
    );
    println!(
        "conventional:       exec {}  devices {}  paths {}",
        conv.schedule.exec_time(&assay),
        conv.schedule.used_device_count(),
        conv.schedule.path_count()
    );

    // Show which operations share devices — the component-oriented win.
    println!("\ndevice sharing (ours):");
    for (d, cfg) in ours.schedule.devices.iter().enumerate() {
        let users: Vec<&str> = assay
            .iter()
            .filter(|(id, _)| ours.schedule.slot(*id).is_some_and(|s| s.device == d))
            .map(|(_, op)| op.name())
            .collect();
        println!("  d{d} ({cfg}):");
        for u in users {
            println!("      {u}");
        }
    }

    // Potential-layout estimation: place devices, derive channel lengths.
    let netlist = ours.schedule.to_netlist(&assay);
    let placed = layout::place(&netlist);
    println!("\npotential layout (usage -> channel length):");
    for (key, usage) in netlist.paths_by_usage() {
        println!(
            "  path {key}: used {usage}x, estimated length {}",
            placed.path_length(key).unwrap_or(0)
        );
    }
    let svg_path = std::env::temp_dir().join("mfhls_kinase_layout.svg");
    std::fs::write(&svg_path, placed.to_svg(&netlist))?;
    println!("\nlayout sketch written to {}", svg_path.display());
    Ok(())
}
