//! Ablation A: sweep the per-layer indeterminate threshold `t` (Algorithm
//! 1's eviction trigger) and report layers, boundary storage, and execution
//! time on the two indeterminate benchmarks.
//!
//! ```text
//! cargo run --release -p mfhls-bench --bin ablation_threshold
//! ```
//!
//! Expectation: small `t` forces many layers (more barriers, more storage,
//! longer fixed time but tighter real-time control granularity); the
//! paper's `t = 10` sits where the layer count stops falling.

use mfhls_bench::{print_table, run_ours};
use mfhls_core::{layer_assay, SynthConfig};

fn main() {
    println!("Ablation A: layering threshold sweep\n");
    for (case, tag, assay) in mfhls_assays::benchmarks() {
        if assay.indeterminate_ops().is_empty() {
            continue;
        }
        println!(
            "case {case} {tag}: {} ops, {} indeterminate",
            assay.len(),
            assay.indeterminate_ops().len()
        );
        let mut rows = Vec::new();
        for t in [1, 2, 4, 6, 8, 10, 12, 16] {
            let layering = match layer_assay(&assay, t) {
                Ok(l) => l,
                Err(e) => {
                    rows.push(vec![t.to_string(), format!("error: {e}")]);
                    continue;
                }
            };
            let storage: u64 = layering.boundary_storage(&assay).iter().sum();
            let ours = run_ours(
                &assay,
                SynthConfig::builder()
                    .indeterminate_threshold(t)
                    .build()
                    .expect("valid config"),
            );
            rows.push(vec![
                t.to_string(),
                layering.num_layers().to_string(),
                storage.to_string(),
                ours.exec.clone(),
                ours.devices.to_string(),
                ours.paths.to_string(),
            ]);
        }
        print_table(
            &["t", "layers", "stored outputs", "Exe. Time", "#D.", "#P."],
            &rows,
        );
        println!();
    }
}
