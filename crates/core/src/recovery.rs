//! Recovery re-synthesis: survive run-time device failures by re-layering
//! and re-synthesizing the *unfinished suffix* of a hybrid schedule on the
//! surviving device library.
//!
//! The hybrid-scheduling structure makes this tractable: execution only
//! commits to one layer at a time, so when a device fails the already
//! executed prefix is immutable, the boundary storage holds every
//! cross-boundary reagent, and the remaining operations form a smaller
//! assay that can go through the same §3.2 synthesis loop again — seeded
//! with the chip's fabricated devices (minus the quarantined ones) instead
//! of an empty library. No new device can be fabricated at run time, so
//! the recovery synthesis is capped at the survivor count, which
//! [`crate::heuristic`] turns into "reuse survivors or fail".
//!
//! The entry point is [`resynthesize_suffix`]; [`RetryPolicy`] configures
//! how a runtime (see `mfhls-sim`) retries aborted attempts before
//! quarantining hardware, and [`Degradation`] reports what completed when
//! recovery gives up.

use crate::{Assay, CoreError, HybridSchedule, OpId, SynthConfig, Synthesizer};
use std::collections::{BTreeMap, BTreeSet};

/// How a runtime retries faulty operations before giving up.
///
/// Backoff is measured in *schedule time* (the same minutes the schedule
/// itself uses): retry `k` (0-based) waits `backoff_base * backoff_factor^k`
/// minutes, capped at `max_backoff`, before the operation is attempted
/// again on the same device. Once `max_retries` attempts have failed the
/// device is quarantined and recovery re-synthesis takes over; if that also
/// fails, the run degrades gracefully (see [`Degradation`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per operation attempt before the device is quarantined.
    pub max_retries: usize,
    /// Backoff before the first retry, in schedule-time units.
    pub backoff_base: u64,
    /// Multiplier applied per successive retry (exponential backoff).
    pub backoff_factor: u64,
    /// Upper bound on a single backoff delay.
    pub max_backoff: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base: 1,
            backoff_factor: 2,
            max_backoff: 64,
        }
    }
}

impl RetryPolicy {
    /// Backoff delay before retry number `retry` (0-based), saturating and
    /// capped at [`RetryPolicy::max_backoff`].
    pub fn backoff_for(&self, retry: usize) -> u64 {
        let exp = u32::try_from(retry).unwrap_or(u32::MAX);
        let factor = self.backoff_factor.saturating_pow(exp);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.max_backoff)
    }

    /// Total schedule-time delay of `retries` successive retries.
    pub fn total_backoff(&self, retries: usize) -> u64 {
        (0..retries).fold(0u64, |acc, k| acc.saturating_add(self.backoff_for(k)))
    }
}

/// A re-synthesized plan for the unfinished suffix of an assay.
#[derive(Debug, Clone)]
pub struct RecoveryPlan {
    /// The suffix assay: the not-yet-completed operations with their
    /// internal dependency edges, reindexed densely.
    pub assay: Assay,
    /// The recovered hybrid schedule over [`RecoveryPlan::assay`]. Device
    /// indices are the *original* chip indices: the seed library is never
    /// renumbered, quarantined devices simply go unused.
    pub schedule: HybridSchedule,
    /// `op_map[suffix_index]` — the original id of each suffix operation.
    pub op_map: Vec<OpId>,
    /// Dependency edges crossing the executed/recovered boundary, as
    /// `(completed original parent, original child)` pairs. Their reagents
    /// sit in boundary storage, so they impose no start-time constraint on
    /// the recovered schedule, but layout and reporting still want them.
    pub boundary_inputs: Vec<(OpId, OpId)>,
    /// The quarantined device indices this plan was built around.
    pub quarantined: BTreeSet<usize>,
}

impl RecoveryPlan {
    /// The original id of suffix operation `suffix`.
    pub fn original_op(&self, suffix: OpId) -> Option<OpId> {
        self.op_map.get(suffix.index()).copied()
    }

    /// The suffix id of original operation `original`, if it is part of the
    /// recovered suffix.
    pub fn suffix_op(&self, original: OpId) -> Option<OpId> {
        self.op_map.iter().position(|&o| o == original).map(OpId)
    }

    /// Device indices actually used by the recovered schedule.
    pub fn devices_used(&self) -> BTreeSet<usize> {
        self.schedule
            .layers
            .iter()
            .flat_map(|l| l.ops.iter().map(|s| s.device))
            .collect()
    }

    /// Whether any slot binds to a quarantined device (always `false` for
    /// plans produced by [`resynthesize_suffix`]).
    pub fn uses_quarantined(&self) -> bool {
        self.devices_used()
            .iter()
            .any(|d| self.quarantined.contains(d))
    }
}

/// A graceful-degradation report: what the run achieved before giving up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// Original ids of the operations that completed.
    pub completed: Vec<OpId>,
    /// Original ids of the operations that had to be abandoned.
    pub abandoned: Vec<OpId>,
    /// Why recovery gave up.
    pub reason: String,
}

impl Degradation {
    /// Builds a report from the completed-op set; every other operation of
    /// `assay` is abandoned.
    pub fn new(assay: &Assay, completed: &BTreeSet<OpId>, reason: String) -> Self {
        Degradation {
            completed: completed.iter().copied().collect(),
            abandoned: assay.op_ids().filter(|o| !completed.contains(o)).collect(),
            reason,
        }
    }

    /// Fraction of the assay's operations that completed, in `[0, 1]`.
    pub fn completion_fraction(&self) -> f64 {
        let total = self.completed.len() + self.abandoned.len();
        if total == 0 {
            1.0
        } else {
            self.completed.len() as f64 / total as f64
        }
    }
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "degraded: {}/{} ops completed ({})",
            self.completed.len(),
            self.completed.len() + self.abandoned.len(),
            self.reason
        )
    }
}

/// Re-layers and re-synthesizes the unfinished suffix of `assay` on the
/// surviving devices of `original`.
///
/// * `completed` — original ids of operations that finished before the
///   fault (the executed prefix). Must be parent-closed: a completed op's
///   parents must all be completed.
/// * `quarantined` — device indices (into `original.devices`) withdrawn
///   from service. Survivors keep their indices in the returned plan.
///
/// With no completed ops and no quarantined devices this is the identity:
/// the original schedule is returned unchanged (recovery is idempotent).
///
/// # Errors
///
/// * [`CoreError::Recovery`] when the executed prefix is inconsistent, a
///   quarantined index is foreign, or the survivors cannot host the suffix
///   (the caller should degrade gracefully via [`Degradation`]).
/// * Other [`CoreError`] variants propagate from the synthesis loop.
pub fn resynthesize_suffix(
    assay: &Assay,
    original: &HybridSchedule,
    completed: &BTreeSet<OpId>,
    quarantined: &BTreeSet<usize>,
    config: &SynthConfig,
) -> Result<RecoveryPlan, CoreError> {
    for &op in completed {
        if op.index() >= assay.len() {
            return Err(CoreError::UnknownOp(op.index()));
        }
    }
    for &d in quarantined {
        if d >= original.devices.len() {
            return Err(CoreError::Recovery(format!(
                "quarantined device d{d} does not exist (chip has {})",
                original.devices.len()
            )));
        }
    }
    // The executed prefix must be closed under "parent of": results cannot
    // exist without their inputs.
    for (p, c) in assay.dependencies() {
        if completed.contains(&c) && !completed.contains(&p) {
            return Err(CoreError::Recovery(format!(
                "executed prefix is inconsistent: {c} completed before its parent {p}"
            )));
        }
    }

    // Idempotence: nothing happened, nothing to re-synthesize.
    if completed.is_empty() && quarantined.is_empty() {
        return Ok(RecoveryPlan {
            assay: assay.clone(),
            schedule: original.clone(),
            op_map: assay.op_ids().collect(),
            boundary_inputs: Vec::new(),
            quarantined: BTreeSet::new(),
        });
    }

    // Build the suffix assay: remaining ops, reindexed densely, with the
    // internal edges kept and boundary edges recorded separately.
    let mut suffix = Assay::new(&format!("{}#recovery", assay.name()));
    let mut op_map = Vec::new();
    let mut to_suffix: BTreeMap<OpId, OpId> = BTreeMap::new();
    for (id, op) in assay.iter() {
        if completed.contains(&id) {
            continue;
        }
        let sid = suffix.add_op(op.clone());
        to_suffix.insert(id, sid);
        op_map.push(id);
    }
    let mut boundary_inputs = Vec::new();
    for (p, c) in assay.dependencies() {
        match (to_suffix.get(&p), to_suffix.get(&c)) {
            (Some(&sp), Some(&sc)) => suffix.add_dependency(sp, sc)?,
            (None, Some(_)) => boundary_inputs.push((p, c)),
            // (_, None): the child completed; the prefix-closure check above
            // already guaranteed the parent completed too.
            _ => {}
        }
    }

    if suffix.is_empty() {
        // Everything already ran; an empty plan is trivially valid.
        return Ok(RecoveryPlan {
            assay: suffix,
            schedule: HybridSchedule {
                layers: Vec::new(),
                devices: original.devices.clone(),
                paths: BTreeSet::new(),
            },
            op_map,
            boundary_inputs,
            quarantined: quarantined.clone(),
        });
    }

    let bindable: Vec<bool> = (0..original.devices.len())
        .map(|d| !quarantined.contains(&d))
        .collect();
    let survivors = bindable.iter().filter(|&&b| b).count();
    if survivors == 0 {
        return Err(CoreError::Recovery(
            "no surviving devices to re-synthesize on".to_owned(),
        ));
    }
    // No hardware can be fabricated at run time: capping the budget at the
    // survivor count makes every "create a device" decision infeasible, so
    // the solver either reuses survivors or reports budget exhaustion.
    mfhls_obs::event(
        mfhls_obs::Level::Info,
        "recovery_resynthesis",
        &[
            ("remaining", suffix.len().into()),
            ("completed", completed.len().into()),
            ("quarantined", quarantined.len().into()),
            ("survivors", survivors.into()),
        ],
    );
    let recovery_config = SynthConfig {
        max_devices: survivors,
        ..config.clone()
    };
    let result = Synthesizer::new(recovery_config)
        .run_seeded(&suffix, &original.devices, &bindable)
        .map_err(|e| match e {
            CoreError::DeviceBudgetExhausted { op, .. } => CoreError::Recovery(format!(
                "survivors cannot host suffix op o{op} ({})",
                suffix.op(OpId(op)).name()
            )),
            other => other,
        })?;

    let plan = RecoveryPlan {
        assay: suffix,
        schedule: result.schedule,
        op_map,
        boundary_inputs,
        quarantined: quarantined.clone(),
    };
    if plan.uses_quarantined() {
        return Err(CoreError::Internal(
            "recovery schedule bound an op to a quarantined device".to_owned(),
        ));
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Duration, Operation};
    use mfhls_chip::{Accessory, Capacity, ContainerKind};

    fn parallel_pair() -> Assay {
        let mut a = Assay::new("pair");
        a.add_op(
            Operation::new("x0")
                .capacity(Capacity::Small)
                .with_duration(Duration::fixed(10)),
        );
        a.add_op(
            Operation::new("x1")
                .capacity(Capacity::Small)
                .with_duration(Duration::fixed(10)),
        );
        a
    }

    fn chain3() -> Assay {
        let mut a = Assay::new("chain");
        let x = a.add_op(
            Operation::new("x")
                .container(ContainerKind::Ring)
                .capacity(Capacity::Medium)
                .accessory(Accessory::Pump)
                .with_duration(Duration::fixed(10)),
        );
        let y = a.add_op(
            Operation::new("y")
                .accessory(Accessory::CellTrap)
                .with_duration(Duration::at_least(3)),
        );
        let z = a.add_op(
            Operation::new("z")
                .accessory(Accessory::OpticalSystem)
                .with_duration(Duration::fixed(5)),
        );
        a.add_dependency(x, y).unwrap();
        a.add_dependency(y, z).unwrap();
        a
    }

    fn synth(a: &Assay) -> HybridSchedule {
        Synthesizer::new(SynthConfig::default())
            .run(a)
            .unwrap()
            .schedule
    }

    /// (a) The recovered schedule never binds to a quarantined device.
    #[test]
    fn recovered_schedule_avoids_quarantined_devices() {
        let a = parallel_pair();
        let original = synth(&a);
        assert!(
            original.used_device_count() >= 2,
            "parallel ops should get parallel devices"
        );
        let dead: BTreeSet<usize> = [0].into_iter().collect();
        let plan = resynthesize_suffix(
            &a,
            &original,
            &BTreeSet::new(),
            &dead,
            &SynthConfig::default(),
        )
        .unwrap();
        assert!(!plan.uses_quarantined());
        assert!(!plan.devices_used().contains(&0));
        plan.schedule.validate(&plan.assay).unwrap();
        // Survivor indices are preserved: the device list is unchanged.
        assert_eq!(plan.schedule.devices, original.devices);
    }

    /// (b) Dependency edges survive the executed/recovered boundary.
    #[test]
    fn boundary_edges_are_preserved() {
        let a = chain3();
        let original = synth(&a);
        let completed: BTreeSet<OpId> = [OpId(0)].into_iter().collect();
        let plan = resynthesize_suffix(
            &a,
            &original,
            &completed,
            &BTreeSet::new(),
            &SynthConfig::default(),
        )
        .unwrap();
        // x -> y crosses the boundary; y -> z stays internal.
        assert_eq!(plan.boundary_inputs, vec![(OpId(0), OpId(1))]);
        let sy = plan.suffix_op(OpId(1)).unwrap();
        let sz = plan.suffix_op(OpId(2)).unwrap();
        assert_eq!(
            plan.assay.dependencies().collect::<Vec<_>>(),
            vec![(sy, sz)]
        );
        assert_eq!(plan.original_op(sy), Some(OpId(1)));
        plan.schedule.validate(&plan.assay).unwrap();
    }

    /// (c) Recovery with zero faults is the identity.
    #[test]
    fn idempotent_with_zero_faults() {
        let a = chain3();
        let original = synth(&a);
        let plan = resynthesize_suffix(
            &a,
            &original,
            &BTreeSet::new(),
            &BTreeSet::new(),
            &SynthConfig::default(),
        )
        .unwrap();
        assert_eq!(plan.schedule, original);
        assert_eq!(plan.op_map, a.op_ids().collect::<Vec<_>>());
        assert!(plan.boundary_inputs.is_empty());
    }

    #[test]
    fn inconsistent_prefix_is_rejected() {
        let a = chain3();
        let original = synth(&a);
        // z "completed" without y: impossible.
        let completed: BTreeSet<OpId> = [OpId(2)].into_iter().collect();
        let err = resynthesize_suffix(
            &a,
            &original,
            &completed,
            &BTreeSet::new(),
            &SynthConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Recovery(_)), "{err}");
    }

    #[test]
    fn losing_every_device_degrades() {
        let a = parallel_pair();
        let original = synth(&a);
        let dead: BTreeSet<usize> = (0..original.devices.len()).collect();
        let err = resynthesize_suffix(
            &a,
            &original,
            &BTreeSet::new(),
            &dead,
            &SynthConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Recovery(_)), "{err}");
        let report = Degradation::new(&a, &BTreeSet::new(), err.to_string());
        assert_eq!(report.completed.len(), 0);
        assert_eq!(report.abandoned.len(), 2);
        assert_eq!(report.completion_fraction(), 0.0);
    }

    #[test]
    fn losing_the_only_compatible_device_degrades() {
        let a = chain3();
        let original = synth(&a);
        // Quarantine the ring that op x needs (completed set is empty, so x
        // must be re-scheduled and nothing else can host it).
        let ring = original.slot(OpId(0)).unwrap().device;
        let dead: BTreeSet<usize> = [ring].into_iter().collect();
        let err = resynthesize_suffix(
            &a,
            &original,
            &BTreeSet::new(),
            &dead,
            &SynthConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Recovery(_)), "{err}");
    }

    #[test]
    fn fully_completed_assay_yields_empty_plan() {
        let a = parallel_pair();
        let original = synth(&a);
        let completed: BTreeSet<OpId> = a.op_ids().collect();
        let plan = resynthesize_suffix(
            &a,
            &original,
            &completed,
            &BTreeSet::new(),
            &SynthConfig::default(),
        )
        .unwrap();
        assert!(plan.assay.is_empty());
        assert!(plan.schedule.layers.is_empty());
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_for(0), 1);
        assert_eq!(p.backoff_for(1), 2);
        assert_eq!(p.backoff_for(2), 4);
        assert_eq!(p.backoff_for(10), 64, "capped at max_backoff");
        assert_eq!(p.total_backoff(3), 1 + 2 + 4);
        let none = RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(none.total_backoff(0), 0);
    }
}
