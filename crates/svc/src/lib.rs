//! The `mfhls` batched synthesis service and its versioned wire API.
//!
//! Three layers, bottom-up:
//!
//! * [`json`] — a dependency-free JSON value with a strict parser and a
//!   deterministic writer (objects keep entry order).
//! * [`api`] — the `mfhls-api/v1` NDJSON schema: [`SynthesisRequest`]
//!   (inline DSL or named benchmark, config overrides through the
//!   validating [`SynthConfig`](mfhls_core::SynthConfig) builder,
//!   requested artifacts, optional deadline), control lines
//!   (`flush`/`cancel`/`shutdown`), typed error kinds, and the response
//!   builders the CLI's `--format json` mode reuses.
//! * [`service`] — [`SynthesisService`]: deterministic admission windows
//!   feeding sharded `mfhls-par` worker pools ([`shard`] routes each
//!   request by a stable FNV hash of its canonical bytes), pipelined
//!   across windows (ingest → shard-solve → write as typed concurrent
//!   stages), a bounded cross-request
//!   [`SharedLayerCache`](mfhls_core::SharedLayerCache), typed overload
//!   rejection, and byte-identical responses at any worker, shard, or
//!   pipeline-depth setting. Runs over any `BufRead`/`Write` pair (the
//!   CLI wires up stdin/stdout) or a local TCP listener.
//!
//! ```
//! use mfhls_svc::{ServiceConfig, SynthesisService};
//! let service = SynthesisService::new(ServiceConfig::default());
//! let input = concat!(
//!     r#"{"version":"mfhls-api/v1","type":"synthesize","id":"r1","#,
//!     r#""assay":{"benchmark":"kinase"}}"#,
//!     "\n",
//! );
//! let mut out = Vec::new();
//! let summary = service.serve(std::io::BufReader::new(input.as_bytes()), &mut out)?;
//! assert_eq!(summary.solved, 1);
//! assert!(String::from_utf8(out)?.contains("\"status\":\"ok\""));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod api;
pub mod json;
pub mod netlist;
mod pipeline;
pub mod service;
pub mod shard;
pub mod spec;

pub use api::{
    benchmark_assay, parse_incoming, solver_from_str, Artifacts, AssaySource, ErrorKind, Incoming,
    RequestError, SynthesisRequest, VERSION,
};
pub use json::{Json, JsonError};
pub use netlist::{assay_from_json, NETLIST_VERSION};
pub use service::{ServiceConfig, ServiceSummary, ShardStats, SynthesisService};
pub use spec::{
    backend_names, kind_name, parse_spec, spec_display, spec_from_json, spec_json, BackendInfo,
    BACKENDS,
};
