//! Regenerates **Table 2** of the paper: synthesis results for the three
//! benchmark bioassays, conventional vs component-oriented.
//!
//! ```text
//! cargo run --release -p mfhls-bench --bin table2
//! ```
//!
//! Paper-reported values for comparison (16/70/120-op cases, |D| = 25,
//! per-layer indeterminate threshold t = 10):
//!
//! | case | method | Exe. Time | #D. | #P. | Runtime |
//! |------|--------|-----------|-----|-----|---------|
//! | 1    | Conv.  | 225m      | 3   | 3   | 5.531s  |
//! | 1    | Our    | 220m      | 2   | 2   | 8.412s  |
//! | 2    | Conv.  | 277m+I1   | 24  | 82  | 5m12s   |
//! | 2    | Our    | 244m+I1   | 21  | 33  | 5m10s   |
//! | 3    | Conv.  | 603m+I1+I2| 24  | 95  | 10m1s   |
//! | 3    | Our    | 492m+I1+I2| 24  | 85  | 10m5s   |
//!
//! Absolute numbers differ (our substrate replaces Gurobi and the authors'
//! protocol durations); the *shape* — our method faster with no more
//! devices and fewer paths — is the reproduction target.

use mfhls_bench::{fmt_runtime, print_table, run_conventional, run_ours};
use mfhls_core::SynthConfig;

fn main() {
    let _trace = mfhls_bench::EnvTrace::from_env();
    println!("Table 2: Synthesis Results for Bioassays");
    println!("(|D| = 25, indeterminate threshold t = 10)\n");
    let benchmarks = mfhls_assays::benchmarks();
    // One work item per assay; results come back in input order, so the
    // table rows are identical at any thread count.
    let results = mfhls_par::par_map(&benchmarks, |(_, _, assay)| {
        let config = SynthConfig::default();
        (
            run_conventional(assay, config.clone()),
            run_ours(assay, config),
        )
    });
    let mut rows = Vec::new();
    for ((case, tag, assay), (conv, ours)) in benchmarks.iter().zip(&results) {
        for (label, r) in [("Conv.", conv), ("Our", ours)] {
            rows.push(vec![
                format!("{case} {tag}"),
                format!(
                    "#Op {} / #Ind.Op {}",
                    assay.len(),
                    assay.indeterminate_ops().len()
                ),
                label.to_string(),
                r.exec.clone(),
                r.devices.to_string(),
                r.paths.to_string(),
                fmt_runtime(r.runtime),
            ]);
        }
    }
    print_table(
        &[
            "Testcase",
            "Size",
            "Method",
            "Exe. Time",
            "#D.",
            "#P.",
            "Runtime",
        ],
        &rows,
    );
}
