//! Benches for the end-to-end synthesis flow: one benchmark per Table 2
//! row pair (our method and the conventional baseline on each case), plus
//! the progressive re-synthesis loop behind Table 3. Uses the vendored
//! `mfhls_bench::timing` harness and writes a machine-readable
//! `BENCH_synthesis.json` (per-assay wall-clock, exec-time, layer-cache
//! hit rate) for CI smoke checks and regression diffing.
//!
//! Sample count defaults to 10; set `MFHLS_BENCH_SAMPLES` to override
//! (CI smoke runs use a small value). The report lands in the working
//! directory (the `crates/bench` package dir under `cargo bench`) unless
//! `MFHLS_BENCH_OUT` names another path.

use mfhls_bench::report::{CaseReport, SynthesisReport};
use mfhls_bench::timing::{bench, measure, samples_from_env};
use mfhls_bench::CaseResult;
use mfhls_core::{SolverKind, SynthConfig};

fn case_report(
    name: String,
    method: &str,
    sample: mfhls_bench::timing::Sample,
    r: &CaseResult,
) -> CaseReport {
    let (hits, misses) = r.result.iterations.iter().fold((0u64, 0u64), |(h, m), it| {
        (h + it.cache_hits, m + it.cache_misses)
    });
    let mut solver = mfhls_core::SolverStats::default();
    for it in &r.result.iterations {
        solver.merge(&it.solver);
    }
    CaseReport {
        name,
        method: method.to_string(),
        wall: sample,
        exec: r.exec.clone(),
        exec_fixed: r.result.final_stats().exec_time.fixed,
        devices: r.devices,
        paths: r.paths,
        iterations: r.result.iterations.len(),
        cache_hits: hits,
        cache_misses: misses,
        solver,
    }
}

fn table2(samples: usize) -> Vec<CaseReport> {
    let mut cases = Vec::new();
    for (case, _, assay) in mfhls_assays::benchmarks() {
        let (wall, r) = measure(samples, || {
            mfhls_bench::run_ours(&assay, SynthConfig::default())
        });
        let name = format!("ours_case{case}");
        print_line(&name, wall);
        cases.push(case_report(name, "ours", wall, &r));

        let (wall, r) = measure(samples, || {
            mfhls_bench::run_conventional(&assay, SynthConfig::default())
        });
        let name = format!("conventional_case{case}");
        print_line(&name, wall);
        cases.push(case_report(name, "conventional", wall, &r));
    }
    cases
}

/// The portfolio raced per layer in the `portfolio_case*` rows: both
/// cheap backends always, plus a cutoff-bounded ILP leg when the assay is
/// small enough that bounded branch-and-bound stays in smoke-test budget.
fn portfolio_solver(with_ilp: bool) -> SolverKind {
    let mut backends = vec![
        SolverKind::Heuristic {
            improvement_passes: 2,
        },
        SolverKind::Sdc {
            improvement_passes: 2,
        },
    ];
    if with_ilp {
        backends.push(SolverKind::Ilp { max_nodes: 20_000 });
    }
    SolverKind::Portfolio { backends }
}

fn portfolio(samples: usize) -> Vec<CaseReport> {
    let mut cases = Vec::new();
    for (case, _, assay) in mfhls_assays::benchmarks() {
        // The ILP legs ride along everywhere: the deterministic
        // pivot-work budget and the 25-op admission gate keep the race
        // in smoke-test budget even on the 120-op case 3.
        let config = SynthConfig::builder()
            .solver(portfolio_solver(true))
            .build()
            .expect("valid config");
        let (wall, r) = measure(samples, || mfhls_bench::run_ours(&assay, config.clone()));
        let name = format!("portfolio_case{case}");
        print_line(&name, wall);
        cases.push(case_report(name, "portfolio", wall, &r));
    }
    cases
}

/// The 120-op head-to-head behind the 0.11.0 trajectory point. Full
/// `--solver ilp` is intractable on case 3 — on its 40-60-op layers
/// branch-and-bound exhausts any budget without an integer-feasible
/// incumbent (a 2 000-node run burns minutes, then errors) — so the race
/// is pitted against the strongest ILP-bearing strategy that completes:
/// hybrid with the same 25-op exact admission and in-race node budget,
/// whose wall-clock is dominated by its per-attempt 10 s time allowance.
/// Opt-in via `MFHLS_BENCH_FACEOFF=1`; the hybrid side still runs tens
/// of seconds, past smoke-test budget.
fn faceoff() -> Vec<CaseReport> {
    if std::env::var("MFHLS_BENCH_FACEOFF").map_or(true, |v| v.is_empty() || v == "0") {
        return Vec::new();
    }
    let (_, _, assay) = mfhls_assays::benchmarks()
        .into_iter()
        .find(|(case, _, _)| *case == 3)
        .expect("case 3 exists");
    let mut cases = Vec::new();
    for (name, solver) in [
        (
            "faceoff_hybrid_case3",
            SolverKind::Hybrid {
                max_nodes: 20_000,
                ilp_op_limit: 25,
                improvement_passes: 2,
            },
        ),
        ("faceoff_portfolio_case3", portfolio_solver(true)),
    ] {
        let config = SynthConfig::builder()
            .solver(solver)
            .build()
            .expect("valid config");
        let (wall, r) = measure(1, || mfhls_bench::run_ours(&assay, config.clone()));
        print_line(name, wall);
        cases.push(case_report(name.to_string(), "faceoff", wall, &r));
    }
    cases
}

fn print_line(name: &str, s: mfhls_bench::timing::Sample) {
    println!(
        "table2/{name:<24} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        s.min, s.median, s.mean, s.count
    );
}

fn table3(samples: usize) {
    for (case, _, assay) in mfhls_assays::benchmarks() {
        if assay.indeterminate_ops().is_empty() {
            continue;
        }
        // Initial pass only vs full progressive re-synthesis.
        bench(
            "table3_resynthesis",
            &format!("initial_only_case{case}"),
            samples,
            || {
                mfhls_bench::run_ours(
                    &assay,
                    SynthConfig::builder()
                        .max_iterations(1)
                        .build()
                        .expect("valid config"),
                )
            },
        );
        bench(
            "table3_resynthesis",
            &format!("progressive_case{case}"),
            samples,
            || mfhls_bench::run_ours(&assay, SynthConfig::default()),
        );
    }
}

fn main() {
    let samples = samples_from_env(10);
    let mut cases = table2(samples);
    cases.extend(portfolio(samples));
    cases.extend(faceoff());
    table3(samples);

    let report = SynthesisReport {
        threads: mfhls_par::max_threads(),
        samples,
        cases,
    };
    let path =
        std::env::var("MFHLS_BENCH_OUT").unwrap_or_else(|_| "BENCH_synthesis.json".to_string());
    let path = std::path::Path::new(&path);
    match report.write(path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
