//! Microfluidic component and general-device library.
//!
//! Implements §2 of the DAC'17 paper: instead of functional device types
//! (mixer, heater, detector, …), devices are described by the *components*
//! they are built from:
//!
//! * **Containers** ([`ContainerKind`]) occupy chip area: a [`ContainerKind::Chamber`]
//!   (a valve-delimited channel segment) or a [`ContainerKind::Ring`] (a
//!   closed loop enabling circulating flow). Containers come in four
//!   [`Capacity`] classes; rings may be large/medium/small, chambers
//!   medium/small/tiny.
//! * **Accessories** ([`Accessory`]) cost processing effort but no area:
//!   pumps, heating pads, optical systems, sieve valves, and cell traps.
//!
//! A *general device* ([`DeviceConfig`]) is one container plus an accessory
//! set; an operation states [`Requirements`] and may bind to any device that
//! [`DeviceConfig::satisfies`] them.
//!
//! The crate also provides the [`CostModel`] (area + processing costs used by
//! the synthesis objective), the flow-channel [`Netlist`] between devices,
//! and a [`layout`] estimator that turns path-usage counts into channel
//! lengths for transport-time refinement.
//!
//! # Example
//!
//! ```
//! use mfhls_chip::{Accessory, AccessorySet, Capacity, ContainerKind, DeviceConfig, Requirements};
//!
//! // A classic rotary mixer: ring + pump.
//! let mixer = DeviceConfig::new(
//!     ContainerKind::Ring,
//!     Capacity::Medium,
//!     AccessorySet::from_iter([Accessory::Pump]),
//! )?;
//! // A cell-isolation step that needs any medium container with a pump.
//! let req = Requirements {
//!     container: None,
//!     capacity: Some(Capacity::Medium),
//!     accessories: AccessorySet::from_iter([Accessory::Pump]),
//! };
//! assert!(mixer.satisfies(&req));
//! # Ok::<(), mfhls_chip::ChipError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod components;
pub mod control;
mod cost;
mod device;
pub mod floorplan;
pub mod layout;
mod netlist;
pub mod routing;

pub use components::{Accessory, AccessorySet, Capacity, ContainerKind};
pub use cost::CostModel;
pub use device::{Device, DeviceConfig, DeviceId, Requirements};
pub use netlist::{Netlist, PathKey};

/// Errors produced when building chip-level data structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChipError {
    /// The (container, capacity) combination is not fabricable: rings are
    /// large/medium/small, chambers medium/small/tiny.
    InvalidCapacity {
        /// Requested container kind.
        container: ContainerKind,
        /// Requested capacity.
        capacity: Capacity,
    },
    /// A device id was not found in the netlist.
    UnknownDevice(usize),
    /// The device is quarantined (failed at run time) and may not take part
    /// in new transfers or retrofits.
    QuarantinedDevice(usize),
}

impl std::fmt::Display for ChipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChipError::InvalidCapacity {
                container,
                capacity,
            } => write!(f, "a {container} cannot have capacity {capacity}"),
            ChipError::UnknownDevice(id) => write!(f, "unknown device id {id}"),
            ChipError::QuarantinedDevice(id) => {
                write!(f, "device id {id} is quarantined after a run-time fault")
            }
        }
    }
}

impl std::error::Error for ChipError {}
