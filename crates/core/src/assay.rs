//! Bioassays: operation DAGs with parent/child reagent dependencies.

use crate::{CoreError, OpId, Operation};
use mfhls_graph::{reach, topo, BitSet, Digraph};

/// A bioassay: a set of [`Operation`]s and the dependency DAG between them
/// (§2.2, attribute *c*: `o_c` is a *child* of `o_p` if it consumes `o_p`'s
/// outputs).
///
/// # Example
///
/// ```
/// use mfhls_core::{Assay, Duration, Operation};
///
/// let mut assay = Assay::new("pcr");
/// let lyse = assay.add_op(Operation::new("lyse").with_duration(Duration::fixed(5)));
/// let amplify = assay.add_op(Operation::new("amplify").with_duration(Duration::fixed(30)));
/// assay.add_dependency(lyse, amplify)?;
/// assert_eq!(assay.children(lyse), vec![amplify]);
/// # Ok::<(), mfhls_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Assay {
    name: String,
    ops: Vec<Operation>,
    edges: Vec<(usize, usize)>,
}

impl Assay {
    /// Creates an empty assay.
    pub fn new(name: &str) -> Self {
        Assay {
            name: name.to_owned(),
            ops: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// The assay's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an operation, returning its id.
    pub fn add_op(&mut self, op: Operation) -> OpId {
        self.ops.push(op);
        OpId(self.ops.len() - 1)
    }

    /// Declares that `child` consumes outputs of `parent`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::UnknownOp`] if either id is foreign.
    /// * [`CoreError::CyclicAssay`] if the edge would close a cycle
    ///   (including self-dependencies).
    pub fn add_dependency(&mut self, parent: OpId, child: OpId) -> Result<(), CoreError> {
        for id in [parent, child] {
            if id.0 >= self.ops.len() {
                return Err(CoreError::UnknownOp(id.0));
            }
        }
        if parent == child {
            return Err(CoreError::CyclicAssay);
        }
        self.edges.push((parent.0, child.0));
        if !topo::is_acyclic(&self.graph()) {
            self.edges.pop();
            return Err(CoreError::CyclicAssay);
        }
        Ok(())
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the assay has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Looks up an operation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is foreign; use [`Assay::get`] for a fallible lookup.
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.0]
    }

    /// Fallible operation lookup.
    pub fn get(&self, id: OpId) -> Option<&Operation> {
        self.ops.get(id.0)
    }

    /// Iterates `(id, operation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, &Operation)> {
        self.ops.iter().enumerate().map(|(i, o)| (OpId(i), o))
    }

    /// All operation ids.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        (0..self.ops.len()).map(OpId)
    }

    /// Dependency edges as `(parent, child)` pairs.
    pub fn dependencies(&self) -> impl Iterator<Item = (OpId, OpId)> + '_ {
        self.edges.iter().map(|&(p, c)| (OpId(p), OpId(c)))
    }

    /// The dependency graph over operation indices.
    pub fn graph(&self) -> Digraph {
        Digraph::from_edges(self.ops.len(), self.edges.iter().copied())
    }

    /// Direct parents of `id`.
    pub fn parents(&self, id: OpId) -> Vec<OpId> {
        self.edges
            .iter()
            .filter(|&&(_, c)| c == id.0)
            .map(|&(p, _)| OpId(p))
            .collect()
    }

    /// Direct children of `id`.
    pub fn children(&self, id: OpId) -> Vec<OpId> {
        self.edges
            .iter()
            .filter(|&&(p, _)| p == id.0)
            .map(|&(_, c)| OpId(c))
            .collect()
    }

    /// Ancestor closure of `id` (excluding `id`).
    pub fn ancestors(&self, id: OpId) -> BitSet {
        reach::ancestors(&self.graph(), id.0)
    }

    /// Descendant closure of `id` (excluding `id`).
    pub fn descendants(&self, id: OpId) -> BitSet {
        reach::descendants(&self.graph(), id.0)
    }

    /// Ids of the indeterminate operations.
    pub fn indeterminate_ops(&self) -> Vec<OpId> {
        self.iter()
            .filter(|(_, o)| o.is_indeterminate())
            .map(|(i, _)| i)
            .collect()
    }

    /// Sum of minimum durations over all operations — a horizon bound used
    /// for big-M constants and sanity checks.
    pub fn total_min_duration(&self) -> u64 {
        self.ops.iter().map(|o| o.duration().min_duration()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Duration;

    fn op(name: &str) -> Operation {
        Operation::new(name).with_duration(Duration::fixed(1))
    }

    #[test]
    fn build_and_navigate() {
        let mut a = Assay::new("t");
        let x = a.add_op(op("x"));
        let y = a.add_op(op("y"));
        let z = a.add_op(op("z"));
        a.add_dependency(x, y).unwrap();
        a.add_dependency(x, z).unwrap();
        a.add_dependency(y, z).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.children(x), vec![y, z]);
        assert_eq!(a.parents(z), vec![x, y]);
        assert_eq!(a.ancestors(z).iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(a.descendants(x).iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn rejects_cycles() {
        let mut a = Assay::new("t");
        let x = a.add_op(op("x"));
        let y = a.add_op(op("y"));
        a.add_dependency(x, y).unwrap();
        assert_eq!(a.add_dependency(y, x), Err(CoreError::CyclicAssay));
        // The failed edge must not linger.
        assert_eq!(a.dependencies().count(), 1);
    }

    #[test]
    fn rejects_self_dependency() {
        let mut a = Assay::new("t");
        let x = a.add_op(op("x"));
        assert!(a.add_dependency(x, x).is_err());
    }

    #[test]
    fn rejects_unknown_ids() {
        let mut a = Assay::new("t");
        let x = a.add_op(op("x"));
        assert_eq!(a.add_dependency(x, OpId(5)), Err(CoreError::UnknownOp(5)));
    }

    #[test]
    fn indeterminate_listing() {
        let mut a = Assay::new("t");
        a.add_op(op("fixed"));
        let i = a.add_op(Operation::new("capture").with_duration(Duration::at_least(3)));
        assert_eq!(a.indeterminate_ops(), vec![i]);
    }

    #[test]
    fn total_duration_horizon() {
        let mut a = Assay::new("t");
        a.add_op(Operation::new("a").with_duration(Duration::fixed(5)));
        a.add_op(Operation::new("b").with_duration(Duration::at_least(7)));
        assert_eq!(a.total_min_duration(), 12);
    }
}
