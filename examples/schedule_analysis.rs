//! Deep-dive into one synthesized schedule: ASCII Gantt chart, device
//! utilisation, critical path, parallelism profile, control-layer
//! estimate, and SVG exports (schedule + routed chip layout).
//!
//! Run with: `cargo run --release --example schedule_analysis`

use mfhls::chip::{control, floorplan, layout, routing};
use mfhls::core::{analysis, render};
use mfhls::{SynthConfig, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let assay = mfhls::assays::gene_expression(4);
    // The validating builder is the standard way to customise a config;
    // these are the paper's defaults spelled out.
    let config = SynthConfig::builder()
        .max_devices(25)
        .indeterminate_threshold(10)
        .build()?;
    let result = Synthesizer::new(config).run(&assay)?;
    result.schedule.validate(&assay)?;

    println!("=== Gantt ===\n");
    print!("{}", render::gantt(&assay, &result.schedule, 76));

    let report = analysis::analyse(&assay, &result.schedule);
    println!("\n=== Analysis ===");
    println!("fixed makespan: {}m", report.fixed_makespan);
    println!("critical path:");
    for op in &report.critical_path {
        println!("  {op}  {}", assay.op(*op).name());
    }
    println!("device utilisation:");
    for d in &report.devices {
        println!(
            "  d{:<3} {:>3} ops, busy {:>4}m, {:>5.1}%",
            d.device,
            d.ops,
            d.busy,
            d.utilisation * 100.0
        );
    }
    for (li, p) in report.parallelism.iter().enumerate() {
        println!(
            "layer {li}: peak parallelism {}, average {:.1}",
            p.peak,
            p.average_milli as f64 / 1000.0
        );
    }
    if !report.boundary_storage.is_empty() {
        println!("boundary storage: {:?}", report.boundary_storage);
    }

    // Control-layer estimate and floorplan feasibility for the chip.
    let netlist = result.schedule.to_netlist(&assay);
    let est = control::estimate(&netlist, &control::ControlModel::default(), true);
    println!(
        "\ncontrol layer: {} valves, {} control ports (+{} heater, +{} optical)",
        est.valves, est.control_ports, est.heater_ports, est.optical_ports
    );
    let report = floorplan::check(
        &netlist,
        &floorplan::ChipSpec::default(),
        &mfhls::chip::CostModel::default(),
        &control::ControlModel::default(),
    );
    println!("floorplan: {report}");

    // SVG exports.
    let tmp = std::env::temp_dir();
    let gantt_svg = tmp.join("mfhls_schedule.svg");
    std::fs::write(&gantt_svg, render::to_svg(&assay, &result.schedule))?;
    let placed = layout::place(&netlist);
    let routed = routing::route(&netlist, &placed);
    let chip_svg = tmp.join("mfhls_chip.svg");
    std::fs::write(&chip_svg, routed.to_svg(&netlist, &placed))?;
    println!(
        "\nSVGs written:\n  schedule: {}\n  chip:     {} (total routed channel length {})",
        gantt_svg.display(),
        chip_svg.display(),
        routed.total_length()
    );
    Ok(())
}
